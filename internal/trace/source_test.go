package trace

import (
	"bytes"
	"sync"
	"testing"

	"valueexpert/cuda"
	"valueexpert/gpu"
	"valueexpert/internal/core"
	"valueexpert/internal/workloads"
)

// reportBytes serializes a report with the one wall-clock field zeroed so
// byte comparison tests semantic equality.
func reportBytes(t *testing.T, p *core.Profiler) []byte {
	t.Helper()
	rep := p.Report()
	rep.Stats.AnalysisTime = 0
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSourcesByteIdentical drives the identical configuration through
// both event sources — live execution and trace replay — and requires
// byte-identical reports: the unified stream contract. Each workload runs
// under the synchronous engine (workers=0) and the pipelined one
// (workers=4, depth=4); beyond live==replay per setting, the reports must
// also agree across settings, proving the concurrent Compact/Absorb path
// is observationally identical to the serial one.
func TestSourcesByteIdentical(t *testing.T) {
	old := workloads.Scale
	workloads.Scale = 64
	defer func() { workloads.Scale = old }()

	for _, name := range []string{"Darknet", "PyTorch-Bert"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			// Both live executions — the recording one and the profiled
			// ones — run from this single goroutine entry, so API events
			// capture identical host call paths; the replay then re-emits
			// the recorded ones.
			var wg sync.WaitGroup
			runLive := func(attach func(rt *cuda.Runtime)) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					src := cuda.NewLiveSource(cuda.NewRuntime(gpu.RTX2080Ti), func(rt *cuda.Runtime) error {
						return w.Run(rt, workloads.Original)
					})
					attach(src.Runtime())
					if err := src.Run(); err != nil {
						t.Error(err)
					}
				}()
				wg.Wait()
			}

			var rec *Recorder
			var data bytes.Buffer
			runLive(func(rt *cuda.Runtime) { rec = Record(rt, &data, FormatBinary) })
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}

			var perSetting [][]byte
			for _, setting := range []struct {
				label          string
				workers, depth int
			}{
				{"w0", 0, 0},
				{"w4-d4", 4, 4},
			} {
				cfg := core.Config{
					Coarse: true, Fine: true,
					BufferRecords:   512,
					AnalysisWorkers: setting.workers,
					PipelineDepth:   setting.depth,
					Program:         name,
				}

				var pLive *core.Profiler
				runLive(func(rt *cuda.Runtime) { pLive = core.Attach(rt, cfg) })

				pReplay, err := core.Profile(NewSource(bytes.NewReader(data.Bytes()), gpu.RTX2080Ti), cfg)
				if err != nil {
					t.Fatal(err)
				}

				liveJSON := reportBytes(t, pLive)
				replayJSON := reportBytes(t, pReplay)
				if !bytes.Equal(liveJSON, replayJSON) {
					t.Fatalf("%s: live and replayed reports differ (%d vs %d bytes)",
						setting.label, len(liveJSON), len(replayJSON))
				}
				perSetting = append(perSetting, liveJSON)
			}
			if !bytes.Equal(perSetting[0], perSetting[1]) {
				t.Fatalf("synchronous and pipelined reports differ (%d vs %d bytes)",
					len(perSetting[0]), len(perSetting[1]))
			}
		})
	}
}

// TestLiveSourceErrorSurfaces: a failing program's error comes back
// through Profile with the partial profile intact.
func TestLiveSourceErrorSurfaces(t *testing.T) {
	src := cuda.NewLiveSource(cuda.NewRuntime(gpu.A100), func(rt *cuda.Runtime) error {
		if _, err := rt.MallocF32(16, "x"); err != nil {
			return err
		}
		return rt.Free(cuda.DevPtr(0xbad)) // not an allocation
	})
	p, err := core.Profile(src, core.Config{Coarse: true})
	if err == nil {
		t.Fatal("bad free did not surface")
	}
	if p == nil || len(p.Report().Objects) != 1 {
		t.Fatal("partial profile lost on error")
	}
}
