// Package trace records a GPU program's API and memory-access stream to a
// portable format and replays it into a fresh profiler — decoupling
// measurement from analysis, so one expensive instrumented run can be
// re-analyzed offline with different thresholds, copy strategies, or
// analyses (the postmortem side of the paper's offline analyzer).
//
// Recording captures every runtime API event (with host payloads for
// host-to-device copies) and, for kernel launches, the full instrumented
// access stream plus execution counters. Replay reconstructs device
// memory from the recorded effects: memsets and copies are re-applied,
// and kernel stores are re-applied from the recorded access records, so
// snapshot-based coarse analysis sees byte-identical values.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"valueexpert/callpath"
	"valueexpert/cuda"
	"valueexpert/gpu"
)

// accessRec is one recorded access (scalar or compacted range).
type accessRec struct {
	PC     gpu.PC        `json:"pc"`
	Addr   uint64        `json:"addr"`
	Size   uint8         `json:"size"`
	Kind   gpu.ValueKind `json:"kind"`
	Store  bool          `json:"store,omitempty"`
	Raw    uint64        `json:"raw"`
	Count  uint32        `json:"count,omitempty"`
	Block  int32         `json:"block"`
	Thread int32         `json:"thread"`
}

// event is one recorded API invocation.
type event struct {
	Kind   string           `json:"kind"` // malloc|free|memset|memcpy|launch
	Seq    int              `json:"seq"`
	Name   string           `json:"name"`
	Frames []callpath.Frame `json:"frames,omitempty"`

	Dst      uint64 `json:"dst,omitempty"`
	Src      uint64 `json:"src,omitempty"`
	Bytes    uint64 `json:"bytes,omitempty"`
	CopyKind uint8  `json:"copy_kind,omitempty"`
	MemsetV  byte   `json:"memset_value,omitempty"`
	HostSrc  []byte `json:"host_src,omitempty"` // H2D payload (base64 via JSON)
	Tag      string `json:"tag,omitempty"`

	Grid     [3]int             `json:"grid,omitempty"`
	Block    [3]int             `json:"block,omitempty"`
	Counters gpu.LaunchCounters `json:"counters,omitempty"`
	Accesses []accessRec        `json:"accesses,omitempty"`
}

// Recorder is a cuda.Interceptor that captures the stream.
type Recorder struct {
	rt     *cuda.Runtime
	events []event
	cur    []accessRec // accesses of the in-flight launch
}

// Record attaches a recorder to the runtime. Recording instruments every
// kernel (no sampling): the point is to capture once and analyze often.
func Record(rt *cuda.Runtime) *Recorder {
	r := &Recorder{rt: rt}
	rt.SetInterceptor(r)
	return r
}

// Detach removes the recorder from the runtime.
func (r *Recorder) Detach() { r.rt.SetInterceptor(nil) }

// APIBegin implements cuda.Interceptor.
func (r *Recorder) APIBegin(ev *cuda.APIEvent) {}

// Instrumentation implements cuda.Interceptor.
func (r *Recorder) Instrumentation(string) (gpu.AccessFunc, func(int32) bool) {
	r.cur = r.cur[:0]
	return func(a gpu.Access) {
		r.cur = append(r.cur, accessRec{
			PC: a.PC, Addr: a.Addr, Size: a.Size, Kind: a.Kind,
			Store: a.Store, Raw: a.Raw, Count: a.Count,
			Block: a.Block, Thread: a.Thread,
		})
	}, nil
}

// APIEnd implements cuda.Interceptor.
func (r *Recorder) APIEnd(ev *cuda.APIEvent) {
	e := event{Seq: ev.Seq, Name: ev.Name, Frames: ev.Frames}
	switch ev.Kind {
	case cuda.APIMalloc:
		e.Kind = "malloc"
		e.Dst, e.Bytes = ev.Dst, ev.Bytes
		if a := r.rt.Device().Mem.Lookup(ev.Dst); a != nil {
			e.Tag = a.Tag
		}
	case cuda.APIFree:
		e.Kind = "free"
		e.Dst = ev.Dst
	case cuda.APIMemset:
		e.Kind = "memset"
		e.Dst, e.Bytes, e.MemsetV = ev.Dst, ev.Bytes, ev.MemsetValue
	case cuda.APIMemcpy:
		e.Kind = "memcpy"
		e.Dst, e.Src, e.Bytes, e.CopyKind = ev.Dst, ev.Src, ev.Bytes, uint8(ev.CopyKind)
		if ev.CopyKind == gpu.CopyHostToDevice {
			e.HostSrc = append([]byte(nil), ev.HostSrc...)
		}
	case cuda.APILaunch:
		e.Kind = "launch"
		e.Grid = [3]int{ev.Grid.X, ev.Grid.Y, ev.Grid.Z}
		e.Block = [3]int{ev.Block.X, ev.Block.Y, ev.Block.Z}
		e.Counters = ev.Counters
		e.Accesses = append([]accessRec(nil), r.cur...)
		r.cur = r.cur[:0]
	}
	r.events = append(r.events, e)
}

// WriteTo serializes the trace as JSON lines.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	for i := range r.events {
		if err := enc.Encode(&r.events[i]); err != nil {
			return cw.n, fmt.Errorf("trace: encode event %d: %w", i, err)
		}
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Events reports the number of recorded events.
func (r *Recorder) Events() int { return len(r.events) }

// replayKernel is a gpu.Kernel that re-applies a recorded access stream:
// stores write their recorded values back into device memory, every
// record is surfaced to the instrumentation hook, and the recorded
// execution counters drive the cost model.
type replayKernel struct {
	name string
	recs []accessRec
	ctrs gpu.LaunchCounters
}

func (k *replayKernel) KernelName() string                     { return k.name }
func (k *replayKernel) AccessTypes() map[gpu.PC]gpu.AccessType { return nil }
func (k *replayKernel) LineMapping() map[gpu.PC]gpu.SrcLine    { return nil }

func (k *replayKernel) Execute(dev *gpu.Device, _, _ gpu.Dim3, hook gpu.AccessFunc, blockFilter func(int32) bool, ctr *gpu.LaunchCounters) error {
	for _, rec := range k.recs {
		a := gpu.Access{
			PC: rec.PC, Addr: rec.Addr, Size: rec.Size, Kind: rec.Kind,
			Store: rec.Store, Raw: rec.Raw, Count: rec.Count,
			Block: rec.Block, Thread: rec.Thread,
		}
		if a.Store {
			raw := a.Raw
			for i := 0; i < a.Elems(); i++ {
				if err := dev.Mem.StoreRaw(a.Addr+uint64(i)*uint64(a.Size), a.Size, raw); err != nil {
					return fmt.Errorf("trace: replay store: %w", err)
				}
			}
		}
		if hook != nil && (blockFilter == nil || blockFilter(a.Block)) {
			hook(a)
		}
	}
	*ctr = k.ctrs
	return nil
}

// Source replays a recorded trace as a cuda.EventSource: the offline
// counterpart of cuda.LiveSource. Allocation order is replayed exactly,
// so object IDs and device addresses match the recording, and any
// consumer attached to Runtime() before Run observes the same stream the
// live program produced.
type Source struct {
	rt *cuda.Runtime
	rd io.Reader
}

// NewSource creates a replay source reading the trace from rd into a
// fresh runtime simulating prof.
func NewSource(rd io.Reader, prof gpu.Profile) *Source {
	return &Source{rt: cuda.NewRuntime(prof), rd: rd}
}

// Runtime implements cuda.EventSource.
func (s *Source) Runtime() *cuda.Runtime { return s.rt }

// Run implements cuda.EventSource by re-executing the recorded stream.
func (s *Source) Run() error {
	dec := json.NewDecoder(s.rd)
	for i := 0; ; i++ {
		var e event
		if err := dec.Decode(&e); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("trace: decode event %d: %w", i, err)
		}
		for _, f := range e.Frames {
			s.rt.PushFrame(f)
		}
		err := applyEvent(s.rt, &e)
		for range e.Frames {
			s.rt.PopFrame()
		}
		if err != nil {
			return fmt.Errorf("trace: replay event %d (%s %s): %w", i, e.Kind, e.Name, err)
		}
	}
}

// Replay re-executes a recorded trace against a fresh runtime with the
// given interceptor-style consumer attached before the stream starts.
// attach receives the runtime (e.g. to attach a profiler) and runs before
// the first event.
func Replay(rd io.Reader, prof gpu.Profile, attach func(rt *cuda.Runtime)) error {
	src := NewSource(rd, prof)
	if attach != nil {
		attach(src.Runtime())
	}
	return src.Run()
}

func applyEvent(rt *cuda.Runtime, e *event) error {
	switch e.Kind {
	case "malloc":
		p, err := rt.Malloc(e.Bytes, e.Tag)
		if err != nil {
			return err
		}
		if uint64(p) != e.Dst {
			return fmt.Errorf("allocator divergence: got %#x, recorded %#x", uint64(p), e.Dst)
		}
		return nil
	case "free":
		return rt.Free(cuda.DevPtr(e.Dst))
	case "memset":
		return rt.Memset(cuda.DevPtr(e.Dst), e.MemsetV, e.Bytes)
	case "memcpy":
		switch gpu.CopyKind(e.CopyKind) {
		case gpu.CopyHostToDevice:
			return rt.MemcpyH2D(cuda.DevPtr(e.Dst), e.HostSrc)
		case gpu.CopyDeviceToHost:
			return rt.MemcpyD2H(make([]byte, e.Bytes), cuda.DevPtr(e.Src))
		default:
			return rt.MemcpyD2D(cuda.DevPtr(e.Dst), cuda.DevPtr(e.Src), e.Bytes)
		}
	case "launch":
		k := &replayKernel{name: e.Name, recs: e.Accesses, ctrs: e.Counters}
		grid := gpu.Dim3{X: e.Grid[0], Y: e.Grid[1], Z: e.Grid[2]}
		block := gpu.Dim3{X: e.Block[0], Y: e.Block[1], Z: e.Block[2]}
		return rt.Launch(k, grid, block)
	}
	return fmt.Errorf("unknown event kind %q", e.Kind)
}
