// Package trace records a GPU program's API and memory-access stream to a
// portable container and replays it into a fresh profiler — decoupling
// measurement from analysis, so one expensive instrumented run can be
// re-analyzed offline with different thresholds, copy strategies, or
// analyses (the postmortem side of the paper's offline analyzer).
//
// Two encodings share one event vocabulary behind the Format seam:
//
//   - FormatBinary (the default) is a versioned, chunked, columnar
//     container: a magic/version header, one chunk per API event, and
//     per-launch access columns (PC/addr/size/kind/raw/block/thread as
//     separate delta+varint-encoded columns). The Writer streams — each
//     chunk is emitted as its launch completes, so recording peak memory
//     is bounded by one launch, not the run. See DESIGN.md §10 for the
//     wire format.
//   - FormatJSONL is the original one-JSON-object-per-event encoding,
//     kept as the human-readable debug format.
//
// Readers sniff the format from the first bytes, so existing JSONL
// traces keep replaying unchanged. Replay reconstructs device memory
// from the recorded effects: memsets and copies are re-applied, and
// kernel stores are re-applied from the recorded access records, so
// snapshot-based coarse analysis sees byte-identical values.
//
// The container also carries kernel capsules (internal/capsule): the
// alloc_at/restore event kinds pin allocations to their original IDs and
// addresses and restore the minimal reachable memory, so one extracted
// launch replays in isolation.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"valueexpert/callpath"
	"valueexpert/cuda"
	"valueexpert/gpu"
)

// Format selects a trace encoding.
type Format uint8

// The trace encodings.
const (
	// FormatBinary is the chunked columnar container (default).
	FormatBinary Format = iota
	// FormatJSONL is the readable one-JSON-object-per-event debug format.
	FormatJSONL
)

// String names the format as the -trace-format flag spells it.
func (f Format) String() string {
	switch f {
	case FormatBinary:
		return "binary"
	case FormatJSONL:
		return "jsonl"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// ParseFormat parses a -trace-format value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "binary", "":
		return FormatBinary, nil
	case "jsonl":
		return FormatJSONL, nil
	}
	return 0, fmt.Errorf("unknown trace format %q (want binary or jsonl)", s)
}

// AccessRec is one recorded access (scalar or compacted range).
type AccessRec struct {
	PC     gpu.PC        `json:"pc"`
	Addr   uint64        `json:"addr"`
	Size   uint8         `json:"size"`
	Kind   gpu.ValueKind `json:"kind"`
	Store  bool          `json:"store,omitempty"`
	Raw    uint64        `json:"raw"`
	Count  uint32        `json:"count,omitempty"`
	Block  int32         `json:"block"`
	Thread int32         `json:"thread"`
}

// Event is one recorded API invocation — the portable vocabulary both
// encodings serialize. Beyond the recorded runtime APIs, three kinds
// exist only in capsule containers: "alloc_at" pins an allocation to its
// original ID and address, "restore" writes a snapshot of device bytes
// back without an API event, and "capsule" carries the capsule metadata.
type Event struct {
	Kind   string           `json:"kind"` // malloc|free|memset|memcpy|launch|alloc_at|restore|capsule
	Seq    int              `json:"seq"`
	Name   string           `json:"name"`
	Frames []callpath.Frame `json:"frames,omitempty"`

	Dst      uint64 `json:"dst,omitempty"`
	Src      uint64 `json:"src,omitempty"`
	Bytes    uint64 `json:"bytes,omitempty"`
	CopyKind uint8  `json:"copy_kind,omitempty"`
	MemsetV  byte   `json:"memset_value,omitempty"`
	HostSrc  []byte `json:"host_src,omitempty"` // H2D payload / restore bytes (base64 via JSON)
	Tag      string `json:"tag,omitempty"`

	Grid     [3]int             `json:"grid,omitempty"`
	Block    [3]int             `json:"block,omitempty"`
	Counters gpu.LaunchCounters `json:"counters,omitempty"`
	Accesses []AccessRec        `json:"accesses,omitempty"`

	// ObjID is an alloc_at event's preserved allocation ID.
	ObjID int `json:"obj_id,omitempty"`

	// Capsule holds a "capsule" event's metadata.
	Capsule *CapsuleInfo `json:"capsule,omitempty"`
}

// CapsuleInfo is the metadata of a kernel capsule: which launch of which
// program it was extracted from, and which data objects it carries.
type CapsuleInfo struct {
	// Program names the application the capsule was extracted from.
	Program string `json:"program"`
	// Device is the device profile name the trace was recorded on.
	Device string `json:"device"`
	// LaunchSeq is the launch's API sequence number in the full trace.
	LaunchSeq int `json:"launch_seq"`
	// LaunchIndex is the launch's zero-based index among the trace's
	// launches.
	LaunchIndex int `json:"launch_index"`
	// ObjectIDs lists the allocation IDs the launch touches (0 = the
	// shared-memory window), in address order.
	ObjectIDs []int `json:"object_ids,omitempty"`
}

// Writer is a streaming trace encoder: events are serialized as they are
// written, in either format. Close finalizes the container (the binary
// footer chunk carrying event/access counts); a trace without its footer
// is detected as truncated on read.
type Writer struct {
	format Format
	cw     countingWriter
	bin    *binWriter
	enc    *json.Encoder

	events   int
	accesses uint64
	closed   bool
}

// NewWriter creates a streaming encoder emitting format to w.
func NewWriter(w io.Writer, format Format) *Writer {
	tw := &Writer{format: format, cw: countingWriter{w: w}}
	if format == FormatJSONL {
		tw.enc = json.NewEncoder(&tw.cw)
	} else {
		tw.bin = newBinWriter(&tw.cw)
	}
	return tw
}

// Format returns the encoding the writer emits.
func (w *Writer) Format() Format { return w.format }

// WriteEvent serializes one event.
func (w *Writer) WriteEvent(e *Event) error {
	if w.closed {
		return fmt.Errorf("trace: write to closed writer")
	}
	w.events++
	if e.Kind == kindLaunch {
		w.accesses += uint64(len(e.Accesses))
	}
	if w.format == FormatJSONL {
		if err := w.enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", w.events-1, err)
		}
		return nil
	}
	return w.bin.writeEvent(e)
}

// Close finalizes the container. For the binary format it writes the end
// chunk (event and access-record counts) readers use to detect
// truncation; JSONL needs no footer. Close does not close the underlying
// writer. Idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.format == FormatBinary {
		return w.bin.writeEnd(w.events, w.accesses)
	}
	return nil
}

// BytesWritten reports the encoded size so far.
func (w *Writer) BytesWritten() int64 { return w.cw.n }

// Events reports the number of events written so far.
func (w *Writer) Events() int { return w.events }

// Accesses reports the number of access records written so far.
func (w *Writer) Accesses() uint64 { return w.accesses }

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Recorder is a cuda.Interceptor that streams the captured event stream
// to a Writer as the program runs: each API event is encoded at its
// APIEnd and each launch's access chunk is flushed when the launch
// completes, so recording holds at most one launch's records in memory.
//
// If the runtime already has an interceptor attached (a profiler), the
// recorder chains in front of it and forwards every callback, so a run
// can be profiled and recorded at once (the daemon's trace sessions).
type Recorder struct {
	rt    *cuda.Runtime
	inner cuda.Interceptor
	w     *Writer
	tees  []*Writer
	cur   []AccessRec
	err   error
}

// Record attaches a streaming recorder to the runtime, encoding format
// to w. Recording instruments every kernel (no sampling): the point is
// to capture once and analyze often. Close the recorder after the
// program ran to detach it and finalize the container.
func Record(rt *cuda.Runtime, w io.Writer, format Format) *Recorder {
	r := &Recorder{rt: rt, inner: rt.Interceptor(), w: NewWriter(w, format)}
	rt.SetInterceptor(r)
	return r
}

// Mirror additionally encodes every subsequent event to tw — one
// instrumented run serialized in several formats at once (vxprof uses a
// JSONL mirror over a counting discard to report the compression ratio).
func (r *Recorder) Mirror(tw *Writer) { r.tees = append(r.tees, tw) }

// Detach removes the recorder from the runtime, restoring whatever
// interceptor it chained in front of.
func (r *Recorder) Detach() { r.rt.SetInterceptor(r.inner) }

// Close detaches the recorder and finalizes every attached writer,
// returning the first error recording hit (encode errors are sticky:
// APIEnd cannot fail, so they surface here).
func (r *Recorder) Close() error {
	r.Detach()
	for _, w := range append([]*Writer{r.w}, r.tees...) {
		if err := w.Close(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}

// Events reports the number of events recorded so far.
func (r *Recorder) Events() int { return r.w.Events() }

// Accesses reports the number of access records recorded so far.
func (r *Recorder) Accesses() uint64 { return r.w.Accesses() }

// BytesWritten reports the primary writer's encoded size so far.
func (r *Recorder) BytesWritten() int64 { return r.w.BytesWritten() }

// Err returns the first sticky recording error, if any.
func (r *Recorder) Err() error { return r.err }

// APIBegin implements cuda.Interceptor.
func (r *Recorder) APIBegin(ev *cuda.APIEvent) {
	if r.inner != nil {
		r.inner.APIBegin(ev)
	}
}

// Instrumentation implements cuda.Interceptor. The recorder always
// instruments (nil filter — every block); a chained interceptor's hook
// is forwarded behind its own block filter, so its observed stream is
// unchanged.
func (r *Recorder) Instrumentation(kernelName string) (gpu.AccessFunc, func(int32) bool) {
	r.cur = r.cur[:0]
	var innerHook gpu.AccessFunc
	var innerFilter func(int32) bool
	if r.inner != nil {
		innerHook, innerFilter = r.inner.Instrumentation(kernelName)
	}
	return func(a gpu.Access) {
		r.cur = append(r.cur, AccessRec{
			PC: a.PC, Addr: a.Addr, Size: a.Size, Kind: a.Kind,
			Store: a.Store, Raw: a.Raw, Count: a.Count,
			Block: a.Block, Thread: a.Thread,
		})
		if innerHook != nil && (innerFilter == nil || innerFilter(a.Block)) {
			innerHook(a)
		}
	}, nil
}

// Drain implements cuda.Drainer by forwarding to the chained
// interceptor, so a profiler behind the recorder still quiesces when a
// kernel fails mid-execution.
func (r *Recorder) Drain() {
	if d, ok := r.inner.(cuda.Drainer); ok {
		d.Drain()
	}
}

// APIEnd implements cuda.Interceptor: the event is encoded immediately.
func (r *Recorder) APIEnd(ev *cuda.APIEvent) {
	if r.inner != nil {
		r.inner.APIEnd(ev)
	}
	e := Event{Seq: ev.Seq, Name: ev.Name, Frames: ev.Frames}
	switch ev.Kind {
	case cuda.APIMalloc:
		e.Kind = kindMalloc
		e.Dst, e.Bytes = ev.Dst, ev.Bytes
		if a := r.rt.Device().Mem.Lookup(ev.Dst); a != nil {
			e.Tag = a.Tag
		}
	case cuda.APIFree:
		e.Kind = kindFree
		e.Dst = ev.Dst
	case cuda.APIMemset:
		e.Kind = kindMemset
		e.Dst, e.Bytes, e.MemsetV = ev.Dst, ev.Bytes, ev.MemsetValue
	case cuda.APIMemcpy:
		e.Kind = kindMemcpy
		e.Dst, e.Src, e.Bytes, e.CopyKind = ev.Dst, ev.Src, ev.Bytes, uint8(ev.CopyKind)
		if ev.CopyKind == gpu.CopyHostToDevice {
			e.HostSrc = ev.HostSrc
		}
	case cuda.APILaunch:
		e.Kind = kindLaunch
		e.Grid = [3]int{ev.Grid.X, ev.Grid.Y, ev.Grid.Z}
		e.Block = [3]int{ev.Block.X, ev.Block.Y, ev.Block.Z}
		e.Counters = ev.Counters
		e.Accesses = r.cur
		r.cur = r.cur[:0]
	}
	for _, w := range append([]*Writer{r.w}, r.tees...) {
		if err := w.WriteEvent(&e); err != nil && r.err == nil {
			r.err = err
		}
	}
}

// The event kind vocabulary shared by both encodings.
const (
	kindMalloc  = "malloc"
	kindFree    = "free"
	kindMemset  = "memset"
	kindMemcpy  = "memcpy"
	kindLaunch  = "launch"
	kindAllocAt = "alloc_at"
	kindRestore = "restore"
	kindCapsule = "capsule"
)
