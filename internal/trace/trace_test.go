package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"valueexpert/cuda"
	"valueexpert/gpu"
	"valueexpert/internal/core"
	"valueexpert/internal/profile"
	"valueexpert/internal/workloads"
)

// recordDarknetFormat records the Darknet workload in the given
// encoding and returns the serialized trace.
func recordDarknetFormat(t *testing.T, f Format) []byte {
	t.Helper()
	old := workloads.Scale
	workloads.Scale = 64
	defer func() { workloads.Scale = old }()
	w, err := workloads.ByName("Darknet")
	if err != nil {
		t.Fatal(err)
	}
	rt := cuda.NewRuntime(gpu.RTX2080Ti)
	var buf bytes.Buffer
	rec := Record(rt, &buf, f)
	if err := w.Run(rt, workloads.Original); err != nil {
		t.Fatal(err)
	}
	if rec.Events() == 0 {
		t.Fatal("nothing recorded")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// recordDarknet records the Darknet workload in the default (binary)
// encoding.
func recordDarknet(t *testing.T) []byte {
	t.Helper()
	return recordDarknetFormat(t, FormatBinary)
}

// profileLive profiles the workload directly for comparison.
func profileLive(t *testing.T) *profile.Report {
	t.Helper()
	old := workloads.Scale
	workloads.Scale = 64
	defer func() { workloads.Scale = old }()
	w, _ := workloads.ByName("Darknet")
	rt := cuda.NewRuntime(gpu.RTX2080Ti)
	p := core.Attach(rt, core.Config{Coarse: true, Fine: true, Program: "Darknet"})
	if err := w.Run(rt, workloads.Original); err != nil {
		t.Fatal(err)
	}
	return p.Report()
}

// TestReplayMatchesLiveProfile is the core guarantee: analyzing a replayed
// trace yields the same findings as analyzing the live run.
func TestReplayMatchesLiveProfile(t *testing.T) {
	data := recordDarknet(t)
	live := profileLive(t)

	var p2 *core.Profiler
	if err := Replay(bytes.NewReader(data), gpu.RTX2080Ti, func(rt *cuda.Runtime) {
		p2 = core.Attach(rt, core.Config{Coarse: true, Fine: true, Program: "Darknet"})
	}); err != nil {
		t.Fatal(err)
	}
	replayed := p2.Report()

	if !reflect.DeepEqual(live.PatternSet(), replayed.PatternSet()) {
		t.Fatalf("pattern sets differ:\nlive:     %v\nreplayed: %v",
			live.PatternSet(), replayed.PatternSet())
	}
	if live.RedundantBytes() != replayed.RedundantBytes() {
		t.Fatalf("redundant bytes: live %d, replayed %d",
			live.RedundantBytes(), replayed.RedundantBytes())
	}
	if len(live.Coarse) != len(replayed.Coarse) {
		t.Fatalf("coarse records: live %d, replayed %d", len(live.Coarse), len(replayed.Coarse))
	}
	if len(live.Fine) != len(replayed.Fine) {
		t.Fatalf("fine records: live %d, replayed %d", len(live.Fine), len(replayed.Fine))
	}
	if !reflect.DeepEqual(live.DuplicateGroups, replayed.DuplicateGroups) {
		t.Fatalf("duplicate groups differ: %v vs %v", live.DuplicateGroups, replayed.DuplicateGroups)
	}
	// Per-record fine pattern agreement.
	for i := range live.Fine {
		lp, rp := live.Fine[i], replayed.Fine[i]
		if lp.Kernel != rp.Kernel || lp.Accesses != rp.Accesses || len(lp.Patterns) != len(rp.Patterns) {
			t.Fatalf("fine record %d differs:\nlive:     %+v\nreplayed: %+v", i, lp, rp)
		}
	}
}

// TestReplayWithDifferentAnalysis re-analyzes the same trace with a
// different configuration — the decoupling the trace exists for.
func TestReplayWithDifferentAnalysis(t *testing.T) {
	data := recordDarknet(t)
	var p *core.Profiler
	if err := Replay(bytes.NewReader(data), gpu.RTX2080Ti, func(rt *cuda.Runtime) {
		p = core.Attach(rt, core.Config{
			Coarse:       true,
			Fine:         true,
			KernelFilter: func(name string) bool { return name == "gemm_kernel" },
			Program:      "Darknet-gemm-only",
		})
	}); err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	for _, f := range rep.Fine {
		if f.Kernel != "gemm_kernel" {
			t.Fatalf("filter ignored on replay: %+v", f)
		}
	}
	if len(rep.Fine) == 0 {
		t.Fatal("no fine records for the filtered kernel")
	}
}

// TestReplayGVProf replays the same trace into the baseline tool.
func TestReplayCountsPreserved(t *testing.T) {
	// Record a tiny run with known counters and check the cost model
	// receives the recorded execution counters on replay.
	rt := cuda.NewRuntime(gpu.A100)
	var buf bytes.Buffer
	rec := Record(rt, &buf, FormatBinary)
	const n = 512
	x, _ := rt.MallocF32(n, "x")
	k := &gpu.GoKernel{
		Name: "w",
		Func: func(th *gpu.Thread) {
			i := th.GlobalID()
			if i >= n {
				return
			}
			th.CountFP64(3)
			th.StoreF32(0, uint64(x)+uint64(4*i), float32(i))
		},
	}
	if err := rt.Launch(k, gpu.Dim1(2), gpu.Dim1(256)); err != nil {
		t.Fatal(err)
	}
	liveStats := rt.Device().Stats()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	var replayRT *cuda.Runtime
	if err := Replay(bytes.NewReader(buf.Bytes()), gpu.A100, func(rt *cuda.Runtime) {
		replayRT = rt
	}); err != nil {
		t.Fatal(err)
	}
	rs := replayRT.Device().Stats()
	if rs.Stores != liveStats.Stores || rs.FP64Ops != liveStats.FP64Ops {
		t.Fatalf("counters: live %+v, replayed %+v", liveStats, rs)
	}
	if rs.KernelTime != liveStats.KernelTime {
		t.Fatalf("kernel time: live %v, replayed %v", liveStats.KernelTime, rs.KernelTime)
	}
	// Device memory reconstructed from the stores.
	raw, err := replayRT.Device().Mem.LoadRaw(uint64(x)+4*100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Float32FromRaw(raw) != 100 {
		t.Fatalf("replayed memory = %v, want 100", gpu.Float32FromRaw(raw))
	}
}

func TestReplayErrors(t *testing.T) {
	if err := Replay(strings.NewReader("{bad json"), gpu.A100, nil); err == nil {
		t.Fatal("bad trace accepted")
	}
	if err := Replay(strings.NewReader(`{"kind":"warp"}`+"\n"), gpu.A100, nil); err == nil {
		t.Fatal("unknown event kind accepted")
	}
	// Allocator divergence: a malloc event with the wrong recorded address.
	bad := `{"kind":"malloc","name":"cudaMalloc","bytes":64,"dst":1234,"tag":"x"}` + "\n"
	if err := Replay(strings.NewReader(bad), gpu.A100, nil); err == nil {
		t.Fatal("allocator divergence not detected")
	}
}
