package vflow

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DOTOptions controls graph rendering.
type DOTOptions struct {
	// Title labels the graph.
	Title string
	// RedundancyThreshold colors edges red at or above this redundant
	// fraction; below it edges are green (Figure 2's color scheme).
	// Default 1/3, matching the coarse-pattern threshold.
	RedundancyThreshold float64
	// WithContexts adds calling-context tooltips to vertices, the hover
	// boxes of the GUI.
	WithContexts bool
}

// DOT renders the graph in Graphviz format following the paper's visual
// conventions: rectangles for allocations, circles for memory operations,
// ovals for kernels; node size scales with invocations; edge thickness
// with bytes; red edges mark redundant value flows.
func (g *Graph) DOT(opts DOTOptions) string {
	if opts.RedundancyThreshold == 0 {
		opts.RedundancyThreshold = 1.0 / 3.0
	}
	var b strings.Builder
	b.WriteString("digraph valueflow {\n")
	if opts.Title != "" {
		fmt.Fprintf(&b, "  label=%q;\n  labelloc=top;\n", opts.Title)
	}
	b.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n")

	active := g.ActiveVertices()
	sort.Slice(active, func(i, j int) bool { return active[i].ID < active[j].ID })

	maxInv := 1
	for _, v := range active {
		if v.Invocations > maxInv {
			maxInv = v.Invocations
		}
	}
	for _, v := range active {
		shape := "oval"
		switch v.Kind {
		case KindHost:
			shape = "house"
		case KindAlloc:
			shape = "box"
		case KindMemcpy, KindMemset:
			shape = "circle"
		}
		// Node size proportional to the importance factor (invocations).
		scale := 0.8 + 1.2*float64(v.Invocations)/float64(maxInv)
		attrs := fmt.Sprintf("shape=%s, width=%.2f, label=\"%d\\n%s\"", shape, scale, v.ID, escape(v.Name))
		if opts.WithContexts && g.tree != nil {
			attrs += fmt.Sprintf(", tooltip=%q", g.tree.Format(v.Context))
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", v.ID, attrs)
	}

	var maxBytes uint64 = 1
	for _, e := range g.Edges() {
		if e.Bytes > maxBytes {
			maxBytes = e.Bytes
		}
	}
	for _, e := range g.Edges() {
		color := "green"
		if e.RedundantFraction() >= opts.RedundancyThreshold {
			color = "red"
		}
		// Pen width scales with log bytes, like the GUI's thickness cue.
		w := 1.0
		if e.Bytes > 0 {
			w = 1 + 4*math.Log1p(float64(e.Bytes))/math.Log1p(float64(maxBytes))
		}
		fmt.Fprintf(&b, "  n%d -> n%d [color=%s, penwidth=%.2f, label=\"obj%d %s %s\"];\n",
			e.From, e.To, color, w, e.Object, e.Op, fmtBytes(e.Bytes))
	}
	b.WriteString("}\n")
	return b.String()
}

func escape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
