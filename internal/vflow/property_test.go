package vflow

import (
	"testing"
	"testing/quick"

	"valueexpert/callpath"
)

// randomGraph builds a graph from a random operation script: each byte
// triple (op, vertexSeed, objectSeed) performs an alloc, read, or write.
func randomGraph(script []byte) *Graph {
	g := New(nil)
	var vertices []VertexID
	touch := func(seed byte) VertexID {
		kind := []VertexKind{KindAlloc, KindMemcpy, KindMemset, KindKernel}[seed%4]
		name := string(rune('a' + seed%8))
		v := g.Touch(kind, name, []callpath.Frame{{Func: name, Line: int(seed % 5)}})
		vertices = append(vertices, v)
		return v
	}
	for i := 0; i+2 < len(script); i += 3 {
		op, vs, os := script[i]%4, script[i+1], int(script[i+2]%6)+1
		v := touch(vs)
		switch op {
		case 0:
			g.RecordAlloc(v, os)
		case 1:
			g.RecordRead(v, os, uint64(os)*100)
		case 2:
			g.RecordWrite(v, os, uint64(os)*100, uint64(os)*10)
		case 3:
			g.RecordHostSink(os, uint64(os)*50)
		}
	}
	return g
}

// Property: every edge's endpoints exist; redundant bytes never exceed
// total bytes; Edges() is deterministic.
func TestGraphInvariants(t *testing.T) {
	f := func(script []byte) bool {
		g := randomGraph(script)
		edges := g.Edges()
		for _, e := range edges {
			if _, ok := g.Vertex(e.From); !ok {
				return false
			}
			if _, ok := g.Vertex(e.To); !ok {
				return false
			}
			if e.RedundantBytes > e.Bytes {
				return false
			}
			if e.Count <= 0 {
				return false
			}
		}
		// Deterministic ordering.
		again := g.Edges()
		for i := range edges {
			if edges[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: a vertex slice is a subgraph (every slice edge exists in the
// full graph) and slicing on any vertex keeps all of that vertex's own
// edges.
func TestVertexSliceIsSubgraph(t *testing.T) {
	f := func(script []byte, pick byte) bool {
		g := randomGraph(script)
		full := map[Edge]bool{}
		for _, e := range g.Edges() {
			e.Count, e.Bytes, e.RedundantBytes = 0, 0, 0
			full[e] = true
		}
		vs := g.Vertices()
		if len(vs) == 0 {
			return true
		}
		vu := vs[int(pick)%len(vs)].ID
		s := g.VertexSlice(vu)
		for _, e := range s.Edges() {
			key := e
			key.Count, key.Bytes, key.RedundantBytes = 0, 0, 0
			if !full[key] {
				return false // edge invented by the slice
			}
		}
		// Every edge incident to vu survives (it trivially reaches vu).
		kept := map[Edge]bool{}
		for _, e := range s.Edges() {
			e.Count, e.Bytes, e.RedundantBytes = 0, 0, 0
			kept[e] = true
		}
		for _, e := range g.Edges() {
			if e.From == vu || e.To == vu {
				key := e
				key.Count, key.Bytes, key.RedundantBytes = 0, 0, 0
				if !kept[key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the important graph never keeps an edge below the threshold
// and never invents edges.
func TestImportantGraphIsSubgraph(t *testing.T) {
	f := func(script []byte, thr uint16) bool {
		g := randomGraph(script)
		ie := float64(thr % 1000)
		gi := g.ImportantGraph(ie, 1e18, Importance{})
		full := map[Edge]bool{}
		for _, e := range g.Edges() {
			full[e] = true
		}
		for _, e := range gi.Edges() {
			if !full[e] {
				return false
			}
			if float64(e.Bytes) < ie {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
