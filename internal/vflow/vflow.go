// Package vflow implements ValueExpert's value flow graph (paper §5.2):
// a context-sensitive directed graph whose vertices are GPU API
// invocations (allocations, memory copies, memory sets, kernel launches)
// plus a distinguished host vertex, and whose edges carry the flow of a
// data object's values from its last writer to each reader or overwriter
// (Definition 5.1). The package also provides the two exploration aids,
// vertex slice graphs (Definition 5.2) and important graphs
// (Definition 5.3), and DOT rendering for the GUI views of Figures 2/3.
package vflow

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"valueexpert/callpath"
)

// VertexKind classifies graph vertices, which determines their shape in
// the rendered graph (rectangle = allocation, circle = memory operation,
// oval = kernel).
type VertexKind uint8

// Vertex kinds.
const (
	KindHost VertexKind = iota
	KindAlloc
	KindMemcpy
	KindMemset
	KindKernel
)

// String names the kind.
func (k VertexKind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindAlloc:
		return "alloc"
	case KindMemcpy:
		return "memcpy"
	case KindMemset:
		return "memset"
	case KindKernel:
		return "kernel"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// VertexID indexes vertices; HostVertex is the distinguished v_host.
type VertexID int

// HostVertex is the v_host vertex of Definition 5.1: any host memory
// operation.
const HostVertex VertexID = 0

// Vertex is one merged GPU API invocation site. Invocations with the same
// kind, name, and calling context merge into a single vertex ("vertices
// with the same call path are merged to simplify presentation").
type Vertex struct {
	ID          VertexID
	Kind        VertexKind
	Name        string // kernel name, API name, or allocation tag
	Context     callpath.ContextID
	Invocations int
	Bytes       uint64 // total bytes moved/accessed by this vertex
	Time        time.Duration
}

// EdgeOp labels how the destination vertex touches the object.
type EdgeOp uint8

// Edge operations.
const (
	OpRead EdgeOp = iota
	OpWrite
)

// String names the op.
func (o EdgeOp) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Edge e_{i,j,k}: values of object k flow from vertex i (its last writer)
// to vertex j, which reads or overwrites them.
type Edge struct {
	From, To VertexID
	Object   int // allocation ID k
	Op       EdgeOp

	Count          int    // merged dynamic occurrences
	Bytes          uint64 // bytes accessed over all occurrences
	RedundantBytes uint64 // written-and-unchanged bytes (colors the edge red)
}

// RedundantFraction is the share of the edge's bytes that were redundant.
func (e *Edge) RedundantFraction() float64 {
	if e.Bytes == 0 {
		return 0
	}
	return float64(e.RedundantBytes) / float64(e.Bytes)
}

type edgeKey struct {
	from, to VertexID
	object   int
	op       EdgeOp
}

type vertexKey struct {
	kind VertexKind
	name string
	ctx  callpath.ContextID
}

// Graph is a value flow graph under construction or analysis.
type Graph struct {
	vertices []Vertex
	edges    map[edgeKey]*Edge

	byKey      map[vertexKey]VertexID
	lastWriter map[int]VertexID // object -> vertex that last wrote it
	tree       *callpath.Tree
}

// New creates an empty graph holding contexts in tree (may be nil; a fresh
// tree is created).
func New(tree *callpath.Tree) *Graph {
	if tree == nil {
		tree = callpath.NewTree()
	}
	g := &Graph{
		edges:      make(map[edgeKey]*Edge),
		byKey:      make(map[vertexKey]VertexID),
		lastWriter: make(map[int]VertexID),
		tree:       tree,
	}
	g.vertices = append(g.vertices, Vertex{ID: HostVertex, Kind: KindHost, Name: "host"})
	return g
}

// Tree returns the calling-context tree the graph's vertices reference.
func (g *Graph) Tree() *callpath.Tree { return g.tree }

// Touch returns the merged vertex for (kind, name, context), creating it
// on first use, and counts one invocation.
func (g *Graph) Touch(kind VertexKind, name string, frames []callpath.Frame) VertexID {
	ctx := g.tree.Intern(frames)
	key := vertexKey{kind: kind, name: name, ctx: ctx}
	id, ok := g.byKey[key]
	if !ok {
		id = VertexID(len(g.vertices))
		g.vertices = append(g.vertices, Vertex{ID: id, Kind: kind, Name: name, Context: ctx})
		g.byKey[key] = id
	}
	g.vertices[id].Invocations++
	return id
}

// AddTime accrues simulated device time to a vertex.
func (g *Graph) AddTime(v VertexID, d time.Duration) { g.vertices[v].Time += d }

// RecordAlloc registers vertex v as the allocation site (and initial
// writer) of object.
func (g *Graph) RecordAlloc(v VertexID, object int) {
	g.lastWriter[object] = v
}

// RecordRead adds/extends the read edge for object from its last writer
// to v.
func (g *Graph) RecordRead(v VertexID, object int, bytes uint64) {
	from, ok := g.lastWriter[object]
	if !ok {
		// Reading an object never written on device: values came from the
		// host side (or are undefined); attribute to the host vertex.
		from = HostVertex
	}
	g.bump(from, v, object, OpRead, bytes, 0)
	g.vertices[v].Bytes += bytes
}

// RecordWrite adds/extends the write edge for object from its last writer
// to v (which overwrites those values) and makes v the new last writer.
// redundantBytes is the written-but-unchanged portion.
func (g *Graph) RecordWrite(v VertexID, object int, bytes, redundantBytes uint64) {
	if from, ok := g.lastWriter[object]; ok {
		g.bump(from, v, object, OpWrite, bytes, redundantBytes)
	}
	g.lastWriter[object] = v
	g.vertices[v].Bytes += bytes
}

// RecordHostSink adds the device-to-host sink edge e_{i,host,k}.
func (g *Graph) RecordHostSink(object int, bytes uint64) {
	from, ok := g.lastWriter[object]
	if !ok {
		return
	}
	g.bump(from, HostVertex, object, OpRead, bytes, 0)
}

func (g *Graph) bump(from, to VertexID, object int, op EdgeOp, bytes, redundant uint64) {
	key := edgeKey{from: from, to: to, object: object, op: op}
	e, ok := g.edges[key]
	if !ok {
		e = &Edge{From: from, To: to, Object: object, Op: op}
		g.edges[key] = e
	}
	e.Count++
	e.Bytes += bytes
	e.RedundantBytes += redundant
}

// Vertices returns the vertices ordered by ID (including the host vertex).
func (g *Graph) Vertices() []Vertex {
	out := make([]Vertex, len(g.vertices))
	copy(out, g.vertices)
	return out
}

// Vertex returns the vertex with the given ID.
func (g *Graph) Vertex(id VertexID) (Vertex, bool) {
	if int(id) < 0 || int(id) >= len(g.vertices) {
		return Vertex{}, false
	}
	return g.vertices[id], true
}

// Edges returns the edges in a deterministic order (from, to, object, op).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Op < b.Op
	})
	return out
}

// EvictObjects removes every edge labelled with one of the dead objects,
// and the objects' last-writer entries. Vertices stay: they aggregate
// invocation counts and byte totals across objects, and those totals are
// unchanged — only the per-object flow detail is released. Edges are the
// graph's unbounded dimension (one per (from, to, object, op)), so this
// is what bounds graph memory on unbounded-lifetime runs.
func (g *Graph) EvictObjects(dead map[int]bool) {
	for key, e := range g.edges {
		if dead[e.Object] {
			delete(g.edges, key)
		}
	}
	for id := range dead {
		delete(g.lastWriter, id)
	}
}

// NumVertices and NumEdges report graph size. NumVertices counts only
// vertices that appear on edges or have invocations, excluding an unused
// host vertex.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges reports the number of merged edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// objectsOf returns the set of objects vertex v reads or writes.
func (g *Graph) objectsOf(v VertexID) map[int]bool {
	objs := make(map[int]bool)
	for _, e := range g.edges {
		if e.To == v || e.From == v {
			objs[e.Object] = true
		}
	}
	return objs
}

// VertexSlice computes G_B(v_u) per Definition 5.2: the subgraph of edges
// labelled with an object that v_u touches and lying on a path (through
// that object's edges) that reaches v_u or that v_u reaches.
func (g *Graph) VertexSlice(vu VertexID) *Graph {
	objs := g.objectsOf(vu)

	// Per object, adjacency over that object's edges only.
	type adj struct {
		fwd, bwd map[VertexID][]VertexID
	}
	adjOf := make(map[int]*adj)
	for _, e := range g.edges {
		if !objs[e.Object] {
			continue
		}
		a := adjOf[e.Object]
		if a == nil {
			a = &adj{fwd: map[VertexID][]VertexID{}, bwd: map[VertexID][]VertexID{}}
			adjOf[e.Object] = a
		}
		a.fwd[e.From] = append(a.fwd[e.From], e.To)
		a.bwd[e.To] = append(a.bwd[e.To], e.From)
	}

	reach := func(start VertexID, next map[VertexID][]VertexID) map[VertexID]bool {
		seen := map[VertexID]bool{start: true}
		stack := []VertexID{start}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range next[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		return seen
	}

	keep := make(map[edgeKey]bool)
	for obj, a := range adjOf {
		fromVu := reach(vu, a.fwd) // vertices v_u reaches via obj edges
		toVu := reach(vu, a.bwd)   // vertices that reach v_u via obj edges
		for key, e := range g.edges {
			if e.Object != obj {
				continue
			}
			// Edge on a path ending at v_u: its head reaches v_u.
			// Edge on a path starting at v_u: its tail is reachable from v_u.
			if toVu[e.To] || fromVu[e.From] {
				keep[key] = true
			}
		}
	}
	return g.subgraph(func(key edgeKey, _ *Edge) bool { return keep[key] }, nil)
}

// Importance is the user-defined metric pair of Definition 5.3.
type Importance struct {
	Edge   func(e Edge) float64   // I(e); default: accessed bytes
	Vertex func(v Vertex) float64 // I(v); default: invocations
}

// ImportantGraph computes G_I per Definition 5.3: edges with I(e) ≥ ie
// survive; vertices survive if on a surviving edge or I(v) ≥ iv.
func (g *Graph) ImportantGraph(ie, iv float64, imp Importance) *Graph {
	if imp.Edge == nil {
		imp.Edge = func(e Edge) float64 { return float64(e.Bytes) }
	}
	if imp.Vertex == nil {
		imp.Vertex = func(v Vertex) float64 { return float64(v.Invocations) }
	}
	return g.subgraph(
		func(_ edgeKey, e *Edge) bool { return imp.Edge(*e) >= ie },
		func(v Vertex) bool { return imp.Vertex(v) >= iv },
	)
}

// subgraph copies g keeping edges passing keepEdge and vertices that are
// on kept edges or pass keepVertex. Vertex IDs, contexts, and stats are
// preserved.
func (g *Graph) subgraph(keepEdge func(edgeKey, *Edge) bool, keepVertex func(Vertex) bool) *Graph {
	ng := &Graph{
		edges:      make(map[edgeKey]*Edge),
		byKey:      make(map[vertexKey]VertexID),
		lastWriter: make(map[int]VertexID),
		tree:       g.tree,
	}
	ng.vertices = make([]Vertex, len(g.vertices))
	copy(ng.vertices, g.vertices)

	used := make(map[VertexID]bool)
	for key, e := range g.edges {
		if keepEdge(key, e) {
			cp := *e
			ng.edges[key] = &cp
			used[e.From] = true
			used[e.To] = true
		}
	}
	// Mark pruned vertices by zeroing their invocations; they remain
	// addressable by ID but renderers skip them.
	for i := range ng.vertices {
		v := &ng.vertices[i]
		if v.ID == HostVertex {
			continue
		}
		if used[v.ID] {
			continue
		}
		if keepVertex != nil && keepVertex(*v) {
			continue
		}
		v.Invocations = 0
	}
	return ng
}

// ActiveVertices returns the vertices a renderer should draw: those on
// edges or with surviving invocation counts, host included only when it
// has edges.
func (g *Graph) ActiveVertices() []Vertex {
	used := make(map[VertexID]bool)
	for _, e := range g.edges {
		used[e.From] = true
		used[e.To] = true
	}
	var out []Vertex
	for _, v := range g.vertices {
		if used[v.ID] || (v.ID != HostVertex && v.Invocations > 0) {
			out = append(out, v)
		}
	}
	return out
}

// Summary renders one line per vertex and edge for logs and tests.
func (g *Graph) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "value flow graph: %d vertices, %d edges\n", len(g.ActiveVertices()), len(g.edges))
	for _, v := range g.ActiveVertices() {
		fmt.Fprintf(&b, "  v%d %s %q x%d bytes=%d\n", v.ID, v.Kind, v.Name, v.Invocations, v.Bytes)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  v%d -> v%d obj=%d %s bytes=%d redundant=%.0f%%\n",
			e.From, e.To, e.Object, e.Op, e.Bytes, 100*e.RedundantFraction())
	}
	return b.String()
}
