package vflow

import (
	"strings"
	"testing"
	"time"

	"valueexpert/callpath"
)

func frame(fn string, line int) []callpath.Frame {
	return []callpath.Frame{{Func: fn, File: "main.cu", Line: line}}
}

// buildFigure3 constructs the worked example of paper Figure 3:
//
//	1: A_dev = cudaMalloc(N)
//	2: B_dev = cudaMalloc(N)
//	3: cudaMemset(A_dev, 0, N)
//	4: cudaMemset(B_dev, 0, N)
//	5: zero_kernel<<<...>>>(A_dev)   // writes zeros over zeros: redundant
//	6: zero_kernel<<<...>>>(B_dev)   // same
//	7: use_kernel<<<...>>>(A_dev, B_dev) // reads A, writes B
func buildFigure3(n uint64) (*Graph, map[int]VertexID) {
	g := New(nil)
	const objA, objB = 1, 2
	ids := make(map[int]VertexID)

	ids[1] = g.Touch(KindAlloc, "A_dev", frame("main", 1))
	g.RecordAlloc(ids[1], objA)
	ids[2] = g.Touch(KindAlloc, "B_dev", frame("main", 2))
	g.RecordAlloc(ids[2], objB)

	ids[3] = g.Touch(KindMemset, "cudaMemset", frame("main", 3))
	g.RecordWrite(ids[3], objA, n, 0)
	ids[4] = g.Touch(KindMemset, "cudaMemset", frame("main", 4))
	g.RecordWrite(ids[4], objB, n, 0)

	ids[5] = g.Touch(KindKernel, "zero_kernel", frame("main", 5))
	g.RecordWrite(ids[5], objA, n, n) // writes zeros over zeros: 100% redundant
	ids[6] = g.Touch(KindKernel, "zero_kernel", frame("main", 6))
	g.RecordWrite(ids[6], objB, n, n)

	ids[7] = g.Touch(KindKernel, "use_kernel", frame("main", 7))
	g.RecordRead(ids[7], objA, n)
	g.RecordWrite(ids[7], objB, n, 0)
	return g, ids
}

func findEdge(t *testing.T, g *Graph, from, to VertexID, obj int, op EdgeOp) Edge {
	t.Helper()
	for _, e := range g.Edges() {
		if e.From == from && e.To == to && e.Object == obj && e.Op == op {
			return e
		}
	}
	t.Fatalf("edge v%d->v%d obj%d %s not found in:\n%s", from, to, obj, op, g.Summary())
	return Edge{}
}

func TestFigure3Construction(t *testing.T) {
	g, ids := buildFigure3(1024)
	// Edges per Figure 3: 1→3, 2→4 (memsets overwrite fresh allocs),
	// 3→5, 4→6 (kernels overwrite memset zeros), 5→7 read A, 6→7 write B.
	findEdge(t, g, ids[1], ids[3], 1, OpWrite)
	findEdge(t, g, ids[2], ids[4], 2, OpWrite)
	e35 := findEdge(t, g, ids[3], ids[5], 1, OpWrite)
	e46 := findEdge(t, g, ids[4], ids[6], 2, OpWrite)
	e57 := findEdge(t, g, ids[5], ids[7], 1, OpRead)
	e67 := findEdge(t, g, ids[6], ids[7], 2, OpWrite)

	if e35.RedundantFraction() != 1 || e46.RedundantFraction() != 1 {
		t.Fatal("zero-over-zero writes should be fully redundant (red edges)")
	}
	if e57.RedundantFraction() != 0 || e67.RedundantFraction() != 0 {
		t.Fatal("use_kernel edges should be green")
	}
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6", g.NumEdges())
	}
}

func TestVertexSliceFigure3d(t *testing.T) {
	// Slicing on vertex 6 keeps only B_dev's chain 2→4→6→7 (Figure 3d):
	// vertices affecting v6 or affected by it.
	g, ids := buildFigure3(1024)
	s := g.VertexSlice(ids[6])
	if s.NumEdges() != 3 {
		t.Fatalf("slice edges = %d, want 3:\n%s", s.NumEdges(), s.Summary())
	}
	findEdge(t, s, ids[2], ids[4], 2, OpWrite)
	findEdge(t, s, ids[4], ids[6], 2, OpWrite)
	findEdge(t, s, ids[6], ids[7], 2, OpWrite)
	// A_dev's chain must be gone.
	for _, e := range s.Edges() {
		if e.Object == 1 {
			t.Fatalf("A_dev edge survived the slice: %+v", e)
		}
	}
	// Slicing on vertex 7 keeps everything (it touches both objects and
	// sits downstream of all writers).
	full := g.VertexSlice(ids[7])
	if full.NumEdges() != 6 {
		t.Fatalf("slice on sink = %d edges, want 6", full.NumEdges())
	}
}

func TestImportantGraphFigure3e(t *testing.T) {
	// Make object A's edges carry N bytes and B's carry N/4; with
	// ie = N/2 only A's chain survives (Figure 3e's pruning idea).
	g := New(nil)
	const objA, objB = 1, 2
	a := g.Touch(KindAlloc, "A", frame("m", 1))
	g.RecordAlloc(a, objA)
	b := g.Touch(KindAlloc, "B", frame("m", 2))
	g.RecordAlloc(b, objB)
	k1 := g.Touch(KindKernel, "k1", frame("m", 3))
	g.RecordWrite(k1, objA, 1024, 0)
	g.RecordWrite(k1, objB, 256, 0)
	k2 := g.Touch(KindKernel, "k2", frame("m", 4))
	g.RecordRead(k2, objA, 1024)
	g.RecordRead(k2, objB, 256)

	gi := g.ImportantGraph(512, 1e18, Importance{})
	if gi.NumEdges() != 2 {
		t.Fatalf("important edges = %d, want 2:\n%s", gi.NumEdges(), gi.Summary())
	}
	for _, e := range gi.Edges() {
		if e.Object != objA {
			t.Fatalf("small edge survived: %+v", e)
		}
	}
	// Vertices on surviving edges remain active; pruned-only vertices
	// disappear from ActiveVertices.
	act := gi.ActiveVertices()
	for _, v := range act {
		if v.Name == "B" {
			t.Fatal("vertex B should be pruned")
		}
	}
	// Vertex threshold can rescue a vertex with no surviving edges.
	gi2 := g.ImportantGraph(1e18, 1, Importance{})
	if gi2.NumEdges() != 0 {
		t.Fatal("all edges should be pruned")
	}
	if len(gi2.ActiveVertices()) == 0 {
		t.Fatal("invocation-important vertices should survive")
	}
}

func TestContextSensitiveMerging(t *testing.T) {
	g := New(nil)
	// Same kernel from the same call path: one vertex, two invocations.
	v1 := g.Touch(KindKernel, "fill", frame("layer_forward", 10))
	v2 := g.Touch(KindKernel, "fill", frame("layer_forward", 10))
	if v1 != v2 {
		t.Fatal("same-context invocations not merged")
	}
	vtx, _ := g.Vertex(v1)
	if vtx.Invocations != 2 {
		t.Fatalf("invocations = %d", vtx.Invocations)
	}
	// Same kernel, different call path: distinct vertex.
	v3 := g.Touch(KindKernel, "fill", frame("layer_backward", 20))
	if v3 == v1 {
		t.Fatal("different contexts merged")
	}
}

func TestHostEdges(t *testing.T) {
	g := New(nil)
	const obj = 1
	alloc := g.Touch(KindAlloc, "x", frame("m", 1))
	g.RecordAlloc(alloc, obj)
	// H2D copy: memcpy vertex writes the object; host is the source.
	cp := g.Touch(KindMemcpy, "cudaMemcpy", frame("m", 2))
	g.RecordWrite(cp, obj, 100, 0)
	// D2H copy: sink edge to host.
	g.RecordHostSink(obj, 100)
	findEdge(t, g, alloc, cp, obj, OpWrite)
	findEdge(t, g, cp, HostVertex, obj, OpRead)
	// Reading an object with no device writer attributes to host.
	g2 := New(nil)
	k := g2.Touch(KindKernel, "k", frame("m", 3))
	g2.RecordRead(k, 42, 8)
	findEdge(t, g2, HostVertex, k, 42, OpRead)
	// Host sink for unknown object is a no-op.
	g2.RecordHostSink(777, 8)
	if g2.NumEdges() != 1 {
		t.Fatal("unknown-object sink created an edge")
	}
}

func TestEdgeAggregation(t *testing.T) {
	g := New(nil)
	a := g.Touch(KindAlloc, "x", frame("m", 1))
	g.RecordAlloc(a, 1)
	k := g.Touch(KindKernel, "k", frame("m", 2))
	g.RecordWrite(k, 1, 100, 50)
	g.lastWriter[1] = a // rewind writer to aggregate on the same edge
	g.RecordWrite(k, 1, 100, 50)
	e := findEdge(t, g, a, k, 1, OpWrite)
	if e.Count != 2 || e.Bytes != 200 || e.RedundantBytes != 100 {
		t.Fatalf("aggregated edge = %+v", e)
	}
	if e.RedundantFraction() != 0.5 {
		t.Fatalf("fraction = %v", e.RedundantFraction())
	}
}

func TestDOTOutput(t *testing.T) {
	g, _ := buildFigure3(1024)
	dot := g.DOT(DOTOptions{Title: "figure3", WithContexts: true})
	for _, frag := range []string{
		"digraph valueflow", "label=\"figure3\"", "shape=box", "shape=circle",
		"shape=oval", "color=red", "color=green", "tooltip=",
	} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, dot)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatal("DOT not closed")
	}
}

func TestDOTByteFormatting(t *testing.T) {
	if fmtBytes(512) != "512B" || fmtBytes(2048) != "2.0KB" ||
		fmtBytes(3<<20) != "3.0MB" || fmtBytes(1<<31) != "2.0GB" {
		t.Fatalf("fmtBytes: %s %s %s %s", fmtBytes(512), fmtBytes(2048), fmtBytes(3<<20), fmtBytes(1<<31))
	}
}

func TestVertexAndTimeAccounting(t *testing.T) {
	g := New(nil)
	v := g.Touch(KindKernel, "k", nil)
	g.AddTime(v, 3*time.Millisecond)
	g.AddTime(v, 2*time.Millisecond)
	vtx, ok := g.Vertex(v)
	if !ok || vtx.Time != 5*time.Millisecond {
		t.Fatalf("time = %v", vtx.Time)
	}
	if _, ok := g.Vertex(999); ok {
		t.Fatal("unknown vertex found")
	}
	if KindKernel.String() != "kernel" || OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("string methods")
	}
	if VertexKind(99).String() == "" {
		t.Fatal("unknown kind render")
	}
}

func TestSummaryRendersCounts(t *testing.T) {
	g, _ := buildFigure3(64)
	s := g.Summary()
	if !strings.Contains(s, "edges") || !strings.Contains(s, "zero_kernel") {
		t.Fatalf("summary = %q", s)
	}
}
