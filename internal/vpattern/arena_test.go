package vpattern

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"valueexpert/gpu"
)

// refHist is the map-based reference the arena histogram replaced: a
// count map plus an explicit insertion-order list, with the same
// saturation contract (add reports whether v is tracked).
type refHist struct {
	counts map[Value]uint64
	order  []Value
}

func newRefHist() *refHist { return &refHist{counts: map[Value]uint64{}} }

func (r *refHist) add(v Value, n uint64, maxTracked int) bool {
	if _, ok := r.counts[v]; ok {
		r.counts[v] += n
		return true
	}
	if len(r.order) >= maxTracked {
		return false
	}
	r.counts[v] = n
	r.order = append(r.order, v)
	return true
}

func (r *refHist) trim(maxTracked int) uint64 {
	if len(r.order) <= maxTracked {
		return 0
	}
	var evicted uint64
	for _, v := range r.order[maxTracked:] {
		evicted += r.counts[v]
		delete(r.counts, v)
	}
	r.order = r.order[:maxTracked]
	return evicted
}

func (r *refHist) entries() []ValueCount {
	out := make([]ValueCount, 0, len(r.order))
	for _, v := range r.order {
		out = append(out, ValueCount{Value: v, Count: r.counts[v]})
	}
	return out
}

func randValue(rng *rand.Rand, pool int) Value {
	raw := uint64(rng.Intn(pool))
	switch rng.Intn(4) {
	case 0:
		return Value{Raw: gpu.RawFromFloat32(float32(raw) * 0.25), Size: 4, Kind: gpu.KindFloat}
	case 1:
		return Value{Raw: gpu.RawFromFloat64(float64(raw) * 0.25), Size: 8, Kind: gpu.KindFloat}
	case 2:
		return Value{Raw: raw, Size: 4, Kind: gpu.KindInt}
	default:
		return Value{Raw: raw, Size: 8, Kind: gpu.KindUint}
	}
}

// TestArenaHistMatchesMapReference: the open-addressing arena histogram
// must match the map+order reference over random add/trim schedules — the
// same entries, in the same first-occurrence order, with the same
// saturation refusals and eviction totals.
func TestArenaHistMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cap := 1 + rng.Intn(64)
		pool := 1 + rng.Intn(96)
		var h valueHist
		ref := newRefHist()
		if trial%3 == 0 {
			h.reset() // resets interleave with fresh use
		}
		for step := 0; step < 400; step++ {
			v := randValue(rng, pool)
			n := uint64(1 + rng.Intn(3))
			got := h.add(v, n, cap)
			want := ref.add(v, n, cap)
			if got != want {
				t.Fatalf("trial %d step %d: add(%+v) tracked=%v, reference %v", trial, step, v, got, want)
			}
		}
		if !reflect.DeepEqual(h.entries, ref.entries()) {
			t.Fatalf("trial %d: entries diverged\narena %+v\nref   %+v", trial, h.entries, ref.entries())
		}
		// Re-applying a tighter cap must evict the same tail.
		tighter := 1 + rng.Intn(cap)
		if got, want := h.trim(tighter), ref.trim(tighter); got != want {
			t.Fatalf("trial %d: trim(%d) evicted %d, reference %d", trial, tighter, got, want)
		}
		if !reflect.DeepEqual(h.entries, ref.entries()) {
			t.Fatalf("trial %d: post-trim entries diverged", trial)
		}
		// The rebuilt index must still find every survivor.
		for _, e := range ref.entries() {
			if !h.add(e.Value, 1, tighter) {
				t.Fatalf("trial %d: tracked value %+v refused after trim", trial, e.Value)
			}
		}
	}
}

func randAccess(rng *rand.Rand) gpu.Access {
	v := randValue(rng, 40)
	return gpu.Access{
		Addr: uint64(rng.Intn(1<<12)) * uint64(v.Size),
		Size: v.Size, Kind: v.Kind, Raw: v.Raw,
		Store: rng.Intn(2) == 0,
	}
}

func randStream(rng *rand.Rand, n int) ([]gpu.Access, func(i int) int) {
	accs := make([]gpu.Access, n)
	objs := make([]int, n)
	for i := range accs {
		accs[i] = randAccess(rng)
		objs[i] = rng.Intn(5)
	}
	return accs, func(i int) int { return objs[i] }
}

func finalizeSequential(cfg FineConfig, accs []gpu.Access, objOf func(i int) int) []FineReport {
	fa := NewFineAccumulator(cfg)
	for i, a := range accs {
		fa.Add(objOf(i), a)
	}
	return fa.Finalize()
}

// TestChunkedAddMatchesSequential: building a shard from record-range
// sub-shards (AddAssoc + FoldAssoc in range order, then one sequential
// ObserveOrderSensitive pass) must finalize identically to plain
// sequential Adds — the invariant intra-batch chunked compaction rests on.
func TestChunkedAddMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := FineConfig{MaxTrackedValues: 24} // force saturation into play
	for trial := 0; trial < 20; trial++ {
		n := 200 + rng.Intn(400)
		accs, objOf := randStream(rng, n)
		want := finalizeSequential(cfg, accs, objOf)

		master := NewFineAccumulator(cfg)
		shard := master.NewShard()
		chunk := 1 + rng.Intn(100)
		for lo := 0; lo < n; lo += chunk {
			hi := min(lo+chunk, n)
			sub := shard.NewShard()
			for i := lo; i < hi; i++ {
				sub.AddAssoc(objOf(i), accs[i])
			}
			shard.FoldAssoc(sub)
		}
		for i, a := range accs {
			shard.ObserveOrderSensitive(objOf(i), a)
		}
		master.Merge(shard)
		if got := master.Finalize(); !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d chunk %d: chunked shard diverged\nwant %+v\ngot  %+v", trial, chunk, want, got)
		}
	}
}

// TestCombineMatchesSeparateMerges: pre-folding adjacent shards with
// Combine and merging the combined partial must equal merging every shard
// separately in flush order — including the deferred replay of the
// order-sensitive detectors riding in pending.
func TestCombineMatchesSeparateMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := FineConfig{MaxTrackedValues: 24}
	for trial := 0; trial < 20; trial++ {
		nShards := 2 + rng.Intn(4)
		perShard := 100 + rng.Intn(200)
		proto := NewFineAccumulator(cfg)
		shards := make([]*FineAccumulator, nShards)
		var all []gpu.Access
		var allObj []int
		for s := range shards {
			shards[s] = proto.NewShard()
			accs, objOf := randStream(rng, perShard)
			for i, a := range accs {
				shards[s].Add(objOf(i), a)
				all = append(all, a)
				allObj = append(allObj, objOf(i))
			}
		}
		want := finalizeSequential(cfg, all, func(i int) int { return allObj[i] })

		// Pairwise combine in flush order (odd trailing shard stays solo),
		// as the pipeline's pre-combiner does, then merge the units in order.
		master := NewFineAccumulator(cfg)
		for s := 0; s < nShards; s += 2 {
			unit := shards[s]
			if s+1 < nShards {
				unit.Combine(shards[s+1])
			}
			master.Merge(unit)
			if s+1 < nShards && len(unit.TakePending()) != 1 {
				t.Fatalf("trial %d: combined shard did not carry its partner in pending", trial)
			}
		}
		if got := master.Finalize(); !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: combined merge diverged\nwant %+v\ngot  %+v", trial, want, got)
		}
	}
}

// TestCombineChainsPending: combining into an already-combined shard must
// keep every deferred shard, in flush order.
func TestCombineChainsPending(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := FineConfig{}
	proto := NewFineAccumulator(cfg)
	shards := make([]*FineAccumulator, 4)
	var all []gpu.Access
	var allObj []int
	for s := range shards {
		shards[s] = proto.NewShard()
		accs, objOf := randStream(rng, 150)
		for i, a := range accs {
			shards[s].Add(objOf(i), a)
			all = append(all, a)
			allObj = append(allObj, objOf(i))
		}
	}
	want := finalizeSequential(cfg, all, func(i int) int { return allObj[i] })

	shards[0].Combine(shards[1])
	shards[2].Combine(shards[3])
	shards[0].Combine(shards[2]) // chained: 2's pending (3) must transfer
	master := NewFineAccumulator(cfg)
	master.Merge(shards[0])
	if got := master.Finalize(); !reflect.DeepEqual(want, got) {
		t.Fatalf("chained combine diverged\nwant %+v\ngot  %+v", want, got)
	}
	if n := len(shards[0].TakePending()); n != 3 {
		t.Fatalf("pending after chained combine = %d shards, want 3", n)
	}
}

// TestShardReuseMatchesFresh: a shard Reset in place and refilled must be
// indistinguishable from a freshly allocated one — the property the
// engine's shard pool depends on.
func TestShardReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	cfg := FineConfig{MaxTrackedValues: 32}
	proto := NewFineAccumulator(cfg)
	reused := proto.NewShard()
	for round := 0; round < 5; round++ {
		accs, objOf := randStream(rng, 300)
		want := finalizeSequential(cfg, accs, objOf)

		reused.Reset()
		for i, a := range accs {
			reused.Add(objOf(i), a)
		}
		master := NewFineAccumulator(cfg)
		master.Merge(reused)
		if got := master.Finalize(); !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: reused shard diverged\nwant %+v\ngot  %+v", round, want, got)
		}
	}
}

// TestRankMatchesFullSort: the bounded top-8 selection must keep exactly
// the entries — in exactly the order — a full sort truncated to 8 would.
func TestRankMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		var sh ObjectShared
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			v := randValue(rng, 12) // small pool: count ties are common
			sh.exact.add(v, uint64(1+rng.Intn(4)), math.MaxInt)
		}
		ref := append([]ValueCount(nil), sh.exact.entries...)
		sort.Slice(ref, func(i, j int) bool { return rankBefore(ref[i], ref[j]) })
		if len(ref) > 8 {
			ref = ref[:8]
		}
		if len(ref) == 0 {
			ref = nil
		}
		sh.rank()
		got := sh.top
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("trial %d: bounded rank diverged\nwant %+v\ngot  %+v", trial, ref, got)
		}
	}
}

// TestFineAddAllocsFree: the fine access path — shared context, exact
// histogram, every builtin detector — must not allocate in the steady
// state, including the in-place Reset between batches.
func TestFineAddAllocsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	accs, objOf := randStream(rng, 512)
	fa := NewFineAccumulator(FineConfig{})
	run := func() {
		fa.Reset()
		for i, a := range accs {
			fa.Add(objOf(i), a)
		}
	}
	run() // warm the arenas, tables, and slot indexes
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("FineAccumulator.Add allocated %.1f times per warmed batch, want 0", allocs)
	}
}
