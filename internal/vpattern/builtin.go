package vpattern

// Builtin pattern registrations. Registration order is the order matches
// appear in reports: the two coarse kinds first (they head the paper's
// taxonomy and the report's coarse tables), then the fine kinds in the
// order the analyzer has always emitted them — single zero before single
// value (the zero case is the stronger claim), then frequent, heavy,
// structured, approximate.
func init() {
	Register(Registration{
		Kind:    RedundantValues,
		Name:    "redundant values",
		Grain:   GrainCoarse,
		Default: true,
	})
	Register(Registration{
		Kind:    DuplicateValues,
		Name:    "duplicate values",
		Grain:   GrainCoarse,
		Default: true,
	})
	Register(Registration{
		Kind:       SingleZero,
		Name:       "single zero",
		Grain:      GrainFine,
		Default:    true,
		New:        newSingleZeroDetector,
		ExactMerge: true,
		Advise:     adviseFlat("conditionally bypass computation and stores when the operand is zero"),
	})
	Register(Registration{
		Kind:       SingleValue,
		Name:       "single value",
		Grain:      GrainFine,
		Default:    true,
		New:        newSingleValueDetector,
		ExactMerge: true,
		Advise:     adviseFlat("contract the array to a scalar (all accessed values identical)"),
	})
	Register(Registration{
		Kind:       FrequentValues,
		Name:       "frequent values",
		Grain:      GrainFine,
		Default:    true,
		New:        newFrequentDetector,
		ExactMerge: true,
		Advise:     adviseScaled("add conditional computation for the hot value(s) to skip redundant work", 1),
	})
	Register(Registration{
		Kind:       HeavyType,
		Name:       "heavy type",
		Grain:      GrainFine,
		Default:    true,
		New:        newHeavyTypeDetector,
		ExactMerge: true,
		Advise:     adviseScaled("demote the element type to shrink memory traffic", 1),
	})
	Register(Registration{
		Kind:    StructuredValues,
		Name:    "structured values",
		Grain:   GrainFine,
		Default: true,
		New:     newStructuredDetector,
		Advise:  adviseFlat("compute values from array indices instead of loading them"),
	})
	Register(Registration{
		Kind:       ApproximateValues,
		Name:       "approximate values",
		Grain:      GrainFine,
		Default:    true,
		New:        newApproxDetector,
		ExactMerge: true,
		Advise:     adviseScaled("exploit the pattern after mantissa relaxation (accuracy budget permitting)", 0.5),
	})
}

// adviseFlat suggests title with the object's full accessed bytes as the
// benefit — for patterns whose exploitation avoids the whole traffic.
func adviseFlat(title string) FineAdvice {
	return func(_ Match, objectBytes uint64) (string, uint64, bool) {
		return title, objectBytes, true
	}
}

// adviseScaled suggests title with the benefit scaled by the match's
// strength (and a further discount for optimizations that only pay off
// partially, e.g. accuracy-gated relaxation).
func adviseScaled(title string, discount float64) FineAdvice {
	return func(m Match, objectBytes uint64) (string, uint64, bool) {
		return title, uint64(float64(objectBytes) * m.Fraction * discount), true
	}
}
