package vpattern

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"valueexpert/internal/interval"
	"valueexpert/internal/parallel"
)

// RedundancyThreshold is the unchanged-fraction above which ValueExpert
// reports the redundant values pattern ("Based on our experiments, we use
// a threshold of 33%", paper §5.1 footnote).
const RedundancyThreshold = 1.0 / 3.0

// DiffResult quantifies a pre/post snapshot comparison of one data object
// at one GPU API.
type DiffResult struct {
	WrittenBytes   uint64 // bytes covered by the API's write intervals
	UnchangedBytes uint64 // written bytes whose value did not change
}

// Fraction is the unchanged share of written bytes.
func (d DiffResult) Fraction() float64 {
	if d.WrittenBytes == 0 {
		return 0
	}
	return float64(d.UnchangedBytes) / float64(d.WrittenBytes)
}

// Redundant applies the paper's 33% threshold.
func (d DiffResult) Redundant() bool {
	return d.WrittenBytes > 0 && d.Fraction() >= RedundancyThreshold
}

// Match converts the diff to a pattern match (Def 3.1).
func (d DiffResult) Match() Match {
	return Match{Kind: RedundantValues, Fraction: d.Fraction(),
		Detail: fmt.Sprintf("%d of %d written bytes unchanged", d.UnchangedBytes, d.WrittenBytes)}
}

// DiffSnapshots compares the before/after snapshots of a data object over
// the written intervals (addresses relative to objBase). Intervals must be
// clipped to the object; out-of-range portions are ignored defensively.
func DiffSnapshots(before, after []byte, written []interval.Interval, objBase uint64) DiffResult {
	var d DiffResult
	n := uint64(len(before))
	if uint64(len(after)) < n {
		n = uint64(len(after))
	}
	for _, iv := range written {
		if iv.End <= objBase {
			continue
		}
		s := uint64(0)
		if iv.Start > objBase {
			s = iv.Start - objBase
		}
		e := iv.End - objBase
		if e > n {
			e = n
		}
		for i := s; i < e; i++ {
			d.WrittenBytes++
			if before[i] == after[i] {
				d.UnchangedBytes++
			}
		}
	}
	return d
}

// diffChunkBytes is the interval-chunk granularity for parallel snapshot
// diffing. Objects smaller than one chunk aren't worth spreading over the
// pool; larger diffs split into chunks of this size.
const diffChunkBytes = 64 << 10

// DiffSnapshotsParallel is DiffSnapshots with the byte comparison spread
// over a worker pool: written intervals are split into bounded chunks, each
// chunk diffed independently, and the integer partial counts summed. The
// result is exactly DiffSnapshots' (the combine is integer addition, so
// chunking cannot change it).
func DiffSnapshotsParallel(pool *parallel.Pool, before, after []byte, written []interval.Interval, objBase uint64) DiffResult {
	if pool == nil || pool.Workers() <= 1 || interval.TotalBytes(written) < 2*diffChunkBytes {
		return DiffSnapshots(before, after, written, objBase)
	}
	chunks := interval.Split(written, diffChunkBytes)
	partials := parallel.MapChunks(pool, len(chunks), func(lo, hi int) DiffResult {
		return DiffSnapshots(before, after, chunks[lo:hi], objBase)
	})
	var d DiffResult
	for _, p := range partials {
		d.WrittenBytes += p.WrittenBytes
		d.UnchangedBytes += p.UnchangedBytes
	}
	return d
}

// SnapshotHash is the SHA-256 digest of a data object's value snapshot,
// the key duplicate-values grouping uses (paper §5.1).
type SnapshotHash [32]byte

// HashSnapshot hashes a snapshot.
func HashSnapshot(data []byte) SnapshotHash { return sha256.Sum256(data) }

// DuplicateTracker groups data objects whose snapshots hash identically
// after a GPU API (Def 3.2). Hash-equal objects are byte-equal up to
// SHA-256 collision, which the paper accepts.
type DuplicateTracker struct {
	byHash map[SnapshotHash]map[int]bool
	lastOf map[int]SnapshotHash

	// ever records every duplicate group observed at any point, keyed by
	// its canonical member list: Definition 3.2 matches objects with the
	// same values "at any GPU API", so groups persist in reports even
	// after the objects diverge.
	ever map[string][]int
}

// NewDuplicateTracker creates an empty tracker.
func NewDuplicateTracker() *DuplicateTracker {
	return &DuplicateTracker{
		byHash: make(map[SnapshotHash]map[int]bool),
		lastOf: make(map[int]SnapshotHash),
		ever:   make(map[string][]int),
	}
}

// Observe records the current snapshot of object objID. Size-0 snapshots
// are ignored (empty objects are trivially equal).
func (t *DuplicateTracker) Observe(objID int, snapshot []byte) {
	if len(snapshot) == 0 {
		return
	}
	h := HashSnapshot(snapshot)
	if prev, ok := t.lastOf[objID]; ok {
		if prev == h {
			return
		}
		delete(t.byHash[prev], objID)
		if len(t.byHash[prev]) == 0 {
			delete(t.byHash, prev)
		}
	}
	t.lastOf[objID] = h
	set := t.byHash[h]
	if set == nil {
		set = make(map[int]bool)
		t.byHash[h] = set
	}
	set[objID] = true
	if len(set) >= 2 {
		g := make([]int, 0, len(set))
		for id := range set {
			g = append(g, id)
		}
		sort.Ints(g)
		t.ever[fmt.Sprint(g)] = g
	}
}

// Evict forgets the given objects entirely: they leave the live hash
// groups, their last-snapshot entries, and every historical group —
// groups left with fewer than two members dissolve, the rest re-key to
// their surviving member list. Called by the engine's dead-object
// eviction; the remaining objects' groups are exactly what a tracker
// that never saw the evicted objects would hold.
func (t *DuplicateTracker) Evict(dead map[int]bool) {
	for id := range dead {
		if h, ok := t.lastOf[id]; ok {
			delete(t.byHash[h], id)
			if len(t.byHash[h]) == 0 {
				delete(t.byHash, h)
			}
			delete(t.lastOf, id)
		}
	}
	rekeyed := make(map[string][]int, len(t.ever))
	for _, g := range t.ever {
		kept := g[:0]
		for _, id := range g {
			if !dead[id] {
				kept = append(kept, id)
			}
		}
		if len(kept) >= 2 {
			rekeyed[fmt.Sprint(kept)] = kept
		}
	}
	t.ever = rekeyed
}

// EverGroups returns every duplicate group observed at any API during the
// run, largest first; subsets of a recorded group are elided.
func (t *DuplicateTracker) EverGroups() [][]int {
	var out [][]int
	for _, g := range t.ever {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	// Drop groups fully contained in an earlier (larger) group.
	var kept [][]int
	for _, g := range out {
		sub := false
		for _, big := range kept {
			if isSubset(g, big) {
				sub = true
				break
			}
		}
		if !sub {
			kept = append(kept, g)
		}
	}
	return kept
}

// isSubset reports whether sorted slice a ⊆ sorted slice b.
func isSubset(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
	}
	return true
}

// Groups returns the sets of object IDs currently sharing a snapshot,
// each sorted ascending, largest group first (ties by first member).
func (t *DuplicateTracker) Groups() [][]int {
	var out [][]int
	for _, set := range t.byHash {
		if len(set) < 2 {
			continue
		}
		g := make([]int, 0, len(set))
		for id := range set {
			g = append(g, id)
		}
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// Hashes returns each tracked object's current snapshot hash, the raw
// material for cross-device duplicate analysis.
func (t *DuplicateTracker) Hashes() map[int]SnapshotHash {
	out := make(map[int]SnapshotHash, len(t.lastOf))
	for id, h := range t.lastOf {
		out[id] = h
	}
	return out
}

// DuplicateOf reports the objects currently duplicating objID's snapshot.
func (t *DuplicateTracker) DuplicateOf(objID int) []int {
	h, ok := t.lastOf[objID]
	if !ok {
		return nil
	}
	var out []int
	for id := range t.byHash[h] {
		if id != objID {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
