package vpattern

import (
	"testing"
	"testing/quick"

	"valueexpert/internal/interval"
)

func TestDiffSnapshotsBasic(t *testing.T) {
	before := []byte{0, 0, 0, 0, 1, 2, 3, 4}
	after := []byte{0, 0, 0, 0, 9, 9, 3, 4}
	// Whole object written.
	d := DiffSnapshots(before, after, []interval.Interval{{Start: 100, End: 108}}, 100)
	if d.WrittenBytes != 8 || d.UnchangedBytes != 6 {
		t.Fatalf("diff = %+v", d)
	}
	if !d.Redundant() {
		t.Fatalf("75%% unchanged should exceed the 33%% threshold")
	}
	m := d.Match()
	if m.Kind != RedundantValues || m.Fraction != 0.75 || m.Detail == "" {
		t.Fatalf("match = %+v", m)
	}
}

func TestDiffSnapshotsPartialIntervals(t *testing.T) {
	before := make([]byte, 16)
	after := make([]byte, 16)
	for i := range after {
		after[i] = byte(i)
	}
	after[2] = 0 // one written byte unchanged
	d := DiffSnapshots(before, after, []interval.Interval{{Start: 102, End: 106}}, 100)
	if d.WrittenBytes != 4 || d.UnchangedBytes != 1 {
		t.Fatalf("diff = %+v", d)
	}
	if d.Redundant() {
		t.Fatal("25% unchanged should be below threshold")
	}
}

func TestDiffSnapshotsClipsOutOfRange(t *testing.T) {
	before := []byte{1, 2, 3, 4}
	after := []byte{1, 2, 3, 4}
	ivs := []interval.Interval{
		{Start: 90, End: 102},  // straddles the start
		{Start: 103, End: 120}, // straddles the end
		{Start: 10, End: 20},   // fully before
	}
	d := DiffSnapshots(before, after, ivs, 100)
	if d.WrittenBytes != 3 || d.UnchangedBytes != 3 {
		t.Fatalf("diff = %+v", d)
	}
}

func TestDiffSnapshotsEmpty(t *testing.T) {
	d := DiffSnapshots(nil, nil, nil, 0)
	if d.WrittenBytes != 0 || d.Redundant() || d.Fraction() != 0 {
		t.Fatalf("empty diff = %+v", d)
	}
}

// Property: UnchangedBytes <= WrittenBytes <= total interval bytes.
func TestDiffSnapshotsBounds(t *testing.T) {
	f := func(before, after []byte, starts []uint8, lens []uint8) bool {
		var ivs []interval.Interval
		n := len(starts)
		if len(lens) < n {
			n = len(lens)
		}
		var total uint64
		for i := 0; i < n; i++ {
			iv := interval.Interval{Start: uint64(starts[i]), End: uint64(starts[i]) + uint64(lens[i])}
			if iv.Valid() {
				ivs = append(ivs, iv)
				total += iv.Len()
			}
		}
		d := DiffSnapshots(before, after, ivs, 0)
		return d.UnchangedBytes <= d.WrittenBytes && d.WrittenBytes <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateTrackerGroups(t *testing.T) {
	tr := NewDuplicateTracker()
	zeros := make([]byte, 64)
	ones := make([]byte, 64)
	for i := range ones {
		ones[i] = 1
	}
	tr.Observe(1, zeros)
	tr.Observe(2, zeros) // duplicate of 1 — the Darknet l.output_gpu / l.x_gpu case
	tr.Observe(3, ones)
	tr.Observe(4, zeros)

	groups := tr.Groups()
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0][0] != 1 || groups[0][2] != 4 {
		t.Fatalf("group members = %v", groups[0])
	}
	if dups := tr.DuplicateOf(2); len(dups) != 2 || dups[0] != 1 || dups[1] != 4 {
		t.Fatalf("DuplicateOf(2) = %v", dups)
	}
	if dups := tr.DuplicateOf(3); len(dups) != 0 {
		t.Fatalf("DuplicateOf(3) = %v", dups)
	}
	if dups := tr.DuplicateOf(99); dups != nil {
		t.Fatalf("DuplicateOf(unknown) = %v", dups)
	}
}

func TestDuplicateTrackerUpdates(t *testing.T) {
	tr := NewDuplicateTracker()
	zeros := make([]byte, 16)
	tr.Observe(1, zeros)
	tr.Observe(2, zeros)
	if len(tr.Groups()) != 1 {
		t.Fatal("expected one group")
	}
	// Object 2 diverges: the *current* group dissolves, but the history
	// remembers it ("at any GPU API", Def 3.2).
	tr.Observe(2, []byte{1, 2, 3})
	if g := tr.Groups(); len(g) != 0 {
		t.Fatalf("groups after divergence = %v", g)
	}
	if g := tr.EverGroups(); len(g) != 1 || len(g[0]) != 2 {
		t.Fatalf("ever groups = %v", g)
	}
	// Re-observing the same content is a no-op.
	tr.Observe(1, zeros)
	tr.Observe(1, zeros)
	if len(tr.DuplicateOf(1)) != 0 {
		t.Fatal("self-duplicate appeared")
	}
	// Empty snapshots ignored.
	tr.Observe(5, nil)
	if _, ok := tr.lastOf[5]; ok {
		t.Fatal("empty snapshot tracked")
	}
}

func TestDuplicateGroupOrdering(t *testing.T) {
	tr := NewDuplicateTracker()
	a := []byte{1}
	b := []byte{2}
	tr.Observe(10, a)
	tr.Observe(11, a)
	tr.Observe(20, b)
	tr.Observe(21, b)
	tr.Observe(22, b)
	g := tr.Groups()
	if len(g) != 2 || len(g[0]) != 3 || g[0][0] != 20 || len(g[1]) != 2 {
		t.Fatalf("groups = %v (want larger group first)", g)
	}
}

func TestHashSnapshotDistinguishes(t *testing.T) {
	if HashSnapshot([]byte{1}) == HashSnapshot([]byte{2}) {
		t.Fatal("hash collision on trivial inputs")
	}
	if HashSnapshot(nil) != HashSnapshot([]byte{}) {
		t.Fatal("empty hashes differ")
	}
}
