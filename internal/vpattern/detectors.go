package vpattern

import (
	"fmt"
	"math"
	"strings"

	"valueexpert/gpu"
)

// The six builtin fine-grained detectors. The stateless ones (single
// zero, single value, frequent values) read everything they need from the
// shared observation context at Finalize; the stateful ones (heavy type,
// structured values, approximate values) keep only the per-object state
// their own definition requires, in dense ID-indexed tables that reset in
// place for shard reuse.

// singleZeroDetector recognizes Def 3.5: every accessed value is zero.
type singleZeroDetector struct{}

func newSingleZeroDetector(FineConfig) Detector { return singleZeroDetector{} }

func (singleZeroDetector) Observe(int, gpu.Access) {}
func (singleZeroDetector) Merge(Detector)          {}
func (singleZeroDetector) Reset()                  {}

func (singleZeroDetector) Finalize(_ int, sh *ObjectShared) (Match, bool) {
	if v, ok := sh.Single(); ok && v.IsZero() {
		return Match{Kind: SingleZero, Fraction: 1,
			Detail: "all accessed values are zero"}, true
	}
	return Match{}, false
}

// singleValueDetector recognizes Def 3.4: every access sees one value.
type singleValueDetector struct{}

func newSingleValueDetector(FineConfig) Detector { return singleValueDetector{} }

func (singleValueDetector) Observe(int, gpu.Access) {}
func (singleValueDetector) Merge(Detector)          {}
func (singleValueDetector) Reset()                  {}

func (singleValueDetector) Finalize(_ int, sh *ObjectShared) (Match, bool) {
	if v, ok := sh.Single(); ok {
		return Match{Kind: SingleValue, Fraction: 1,
			Detail: fmt.Sprintf("all accesses see value %s", v.Format())}, true
	}
	return Match{}, false
}

// frequentDetector recognizes Def 3.3: "accesses to one or more
// particular values" — the smallest set of hot values (capped at 8) whose
// cumulative access share reaches the threshold 𝒯. A single value
// subsumes it.
type frequentDetector struct{ cfg FineConfig }

func newFrequentDetector(cfg FineConfig) Detector { return frequentDetector{cfg: cfg} }

func (frequentDetector) Observe(int, gpu.Access) {}
func (frequentDetector) Merge(Detector)          {}
func (frequentDetector) Reset()                  {}

func (d frequentDetector) Finalize(_ int, sh *ObjectShared) (Match, bool) {
	if _, single := sh.Single(); single {
		return Match{}, false
	}
	top := sh.Top()
	if len(top) == 0 {
		return Match{}, false
	}
	total := sh.Accesses()
	var cum uint64
	hot := 0
	for _, vc := range top {
		cum += vc.Count
		hot++
		if float64(cum)/float64(total) >= d.cfg.FrequentThreshold {
			break
		}
	}
	frac := float64(cum) / float64(total)
	if frac < d.cfg.FrequentThreshold {
		return Match{}, false
	}
	names := make([]string, 0, 3)
	for _, vc := range top[:min(hot, 3)] {
		names = append(names, vc.Value.Format())
	}
	return Match{Kind: FrequentValues, Fraction: frac,
		Detail: fmt.Sprintf("%d hot value(s) {%s%s} account for %.1f%% of accesses",
			hot, strings.Join(names, ", "), ellipsis(hot > 3), 100*frac)}, true
}

// heavyState is one object's range/type tracking for heavy type.
type heavyState struct {
	// Declared access type: the (kind, size) all accesses agree on; a
	// conflict downgrades to unknown.
	at        gpu.AccessType
	atConsist bool

	minI, maxI   int64
	minU, maxU   uint64
	allF64AsF32  bool
	sawInt, sawU bool
	sawFloat     bool
}

// heavyTypeDetector recognizes Def 3.6: values declared wide but
// narrow-representable. Min/max and flag folds are exactly associative,
// so its partials pre-combine (ExactMerge).
type heavyTypeDetector struct {
	objs table[heavyState]
}

func newHeavyTypeDetector(FineConfig) Detector { return &heavyTypeDetector{} }

func (d *heavyTypeDetector) Reset() { d.objs.reset(nil) }

func (d *heavyTypeDetector) Observe(objID int, a gpu.Access) {
	at := gpu.AccessType{Kind: a.Kind, Size: a.Size}
	st, created := d.objs.at(objID)
	if created {
		st.at, st.atConsist, st.allF64AsF32 = at, true, true
		st.minI, st.maxI = math.MaxInt64, math.MinInt64
		st.minU = math.MaxUint64
	} else if st.at != at {
		st.atConsist = false
	}
	switch a.Kind {
	case gpu.KindInt:
		st.sawInt = true
		s := signExtend(a.Raw, a.Size)
		if s < st.minI {
			st.minI = s
		}
		if s > st.maxI {
			st.maxI = s
		}
	case gpu.KindUint:
		st.sawU = true
		if a.Raw < st.minU {
			st.minU = a.Raw
		}
		if a.Raw > st.maxU {
			st.maxU = a.Raw
		}
	case gpu.KindFloat:
		st.sawFloat = true
		if a.Size == 8 {
			f := gpu.Float64FromRaw(a.Raw)
			if float64(float32(f)) != f {
				st.allF64AsF32 = false
			}
		}
	}
}

func (d *heavyTypeDetector) Merge(partial Detector) {
	o := partial.(*heavyTypeDetector)
	for _, id := range o.objs.ids {
		ob := o.objs.get(id)
		st, created := d.objs.at(id)
		if created {
			*st = *ob
			continue
		}
		// Declared access type: consistent only if both halves are
		// internally consistent and agree; st.at stays first-seen.
		if !ob.atConsist || st.at != ob.at {
			st.atConsist = false
		}
		// The sentinels used at init make unconditional min/max folds
		// correct even when one side never saw that kind.
		if ob.minI < st.minI {
			st.minI = ob.minI
		}
		if ob.maxI > st.maxI {
			st.maxI = ob.maxI
		}
		if ob.minU < st.minU {
			st.minU = ob.minU
		}
		if ob.maxU > st.maxU {
			st.maxU = ob.maxU
		}
		st.allF64AsF32 = st.allF64AsF32 && ob.allF64AsF32
		st.sawInt = st.sawInt || ob.sawInt
		st.sawU = st.sawU || ob.sawU
		st.sawFloat = st.sawFloat || ob.sawFloat
	}
}

func (d *heavyTypeDetector) Finalize(objID int, sh *ObjectShared) (Match, bool) {
	st := d.objs.get(objID)
	if st == nil || !st.atConsist {
		return Match{}, false
	}
	declared := st.at
	switch {
	case st.sawInt && declared.Size >= 2:
		need := intWidth(st.minI, st.maxI)
		if need < declared.Size {
			return Match{Kind: HeavyType,
				Fraction: 1 - float64(need)/float64(declared.Size),
				Detail: fmt.Sprintf("int%d values fit in int%d (range [%d,%d])",
					8*declared.Size, 8*need, st.minI, st.maxI)}, true
		}
	case st.sawU && declared.Size >= 2:
		need := uintWidth(st.maxU)
		if need < declared.Size {
			return Match{Kind: HeavyType,
				Fraction: 1 - float64(need)/float64(declared.Size),
				Detail: fmt.Sprintf("uint%d values fit in uint%d (max %d)",
					8*declared.Size, 8*need, st.maxU)}, true
		}
	case st.sawFloat && declared.Size == 8 && st.allF64AsF32:
		return Match{Kind: HeavyType, Fraction: 0.5,
			Detail: "float64 values are exactly representable as float32"}, true
	case st.sawFloat && sh.Distinct() >= 2 && sh.Distinct() <= 256 && !sh.Saturated() &&
		sh.Accesses() >= 4*uint64(sh.Distinct()):
		// A tiny dictionary of float values (e.g. lavaMD's rA drawn from
		// {0.1..1.0}) can travel as uint8 indices (paper §8.6).
		return Match{Kind: HeavyType,
			Fraction: 1 - float64(1)/float64(declared.Size),
			Detail: fmt.Sprintf("float%d values drawn from %d distinct values; index with uint8",
				8*declared.Size, sh.Distinct())}, true
	}
	return Match{}, false
}

func intWidth(lo, hi int64) uint8 {
	for _, w := range []uint8{1, 2, 4} {
		floor := -(int64(1) << (8*w - 1))
		ceil := int64(1)<<(8*w-1) - 1
		if lo >= floor && hi <= ceil {
			return w
		}
	}
	return 8
}

func uintWidth(hi uint64) uint8 {
	switch {
	case hi <= math.MaxUint8:
		return 1
	case hi <= math.MaxUint16:
		return 2
	case hi <= math.MaxUint32:
		return 4
	}
	return 8
}

// structState holds one object's streaming sums for the structured-values
// least-squares fit (x = element index relative to the first accessed
// address, keeping magnitudes small enough that the sums stay numerically
// stable).
type structState struct {
	n            float64
	x0           float64
	x0set        bool
	sumX, sumY   float64
	sumXX, sumXY float64
	sumYY        float64
	elemSize     uint64
	// fitSkew marks that merged partials derived element indices from
	// different element sizes, so the combined least-squares sums are not
	// over a common index axis and the structured fit must be skipped.
	fitSkew bool
}

// structuredDetector recognizes Def 3.7: linear value↔address correlation.
// Its Merge rebases float sums (shift terms), which is NOT bitwise
// associative — the registration leaves ExactMerge unset, so the engine
// always feeds it whole batches sequentially and merges partials strictly
// in flush order.
type structuredDetector struct {
	cfg  FineConfig
	objs table[structState]
}

func newStructuredDetector(cfg FineConfig) Detector {
	return &structuredDetector{cfg: cfg}
}

func (d *structuredDetector) Reset() { d.objs.reset(nil) }

func (d *structuredDetector) Observe(objID int, a gpu.Access) {
	st, _ := d.objs.at(objID)
	if st.elemSize == 0 {
		st.elemSize = uint64(a.Size)
	}
	if !st.x0set {
		st.x0 = float64(a.Addr / st.elemSize)
		st.x0set = true
	}
	x := float64(a.Addr/st.elemSize) - st.x0 // monotone in address
	y := Value{Raw: a.Raw, Size: a.Size, Kind: a.Kind}.Numeric()
	if !math.IsNaN(y) && !math.IsInf(y, 0) {
		st.n++
		st.sumX += x
		st.sumY += y
		st.sumXX += x * x
		st.sumXY += x * y
		st.sumYY += y * y
	}
}

func (d *structuredDetector) Merge(partial Detector) {
	o := partial.(*structuredDetector)
	for _, id := range o.objs.ids {
		ob := o.objs.get(id)
		st, created := d.objs.at(id)
		if created {
			*st = *ob
			continue
		}
		st.fitSkew = st.fitSkew || ob.fitSkew
		if ob.elemSize != 0 && st.elemSize != 0 && ob.elemSize != st.elemSize {
			// The two partials indexed elements on different strides; their
			// least-squares sums cannot be placed on a common axis.
			st.fitSkew = true
		}
		if st.elemSize == 0 {
			st.elemSize = ob.elemSize
		}
		// Shift the partial's element indices from its local origin ob.x0
		// onto st's axis (d = ob.x0 - st.x0, so each of ob's indices x
		// becomes x + d), which rebases the sums in closed form.
		if ob.x0set {
			if !st.x0set {
				st.x0, st.x0set = ob.x0, true
				st.n += ob.n
				st.sumX += ob.sumX
				st.sumY += ob.sumY
				st.sumXX += ob.sumXX
				st.sumXY += ob.sumXY
				st.sumYY += ob.sumYY
			} else {
				shift := ob.x0 - st.x0
				st.n += ob.n
				st.sumX += ob.sumX + ob.n*shift
				st.sumY += ob.sumY
				st.sumXX += ob.sumXX + 2*shift*ob.sumX + ob.n*shift*shift
				st.sumXY += ob.sumXY + shift*ob.sumY
				st.sumYY += ob.sumYY
			}
		}
	}
}

func (d *structuredDetector) Finalize(objID int, _ *ObjectShared) (Match, bool) {
	st := d.objs.get(objID)
	if st == nil || st.n < float64(d.cfg.StructuredMinCount) || st.fitSkew {
		return Match{}, false
	}
	n := st.n
	den := n*st.sumXX - st.sumX*st.sumX
	if den == 0 {
		return Match{}, false
	}
	varY := n*st.sumYY - st.sumY*st.sumY
	if varY <= 0 {
		// Constant values: that's single value, not structured.
		return Match{}, false
	}
	slope := (n*st.sumXY - st.sumX*st.sumY) / den
	// Intercept at the first accessed element (index 0 of the fit),
	// which for whole-array sweeps is the object's first element.
	intercept := (st.sumY - slope*st.sumX) / n
	r := (n*st.sumXY - st.sumX*st.sumY) / math.Sqrt(den*varY)
	r2 := r * r
	if math.IsNaN(r2) || r2 < d.cfg.StructuredMinR2 || slope == 0 {
		return Match{}, false
	}
	return Match{Kind: StructuredValues, Fraction: r2,
		Detail: fmt.Sprintf("value ≈ %.6g·index %+.6g (r²=%.4f, index from first accessed element)",
			slope, intercept, r2)}, true
}

// approxDetector recognizes Def 3.8: mantissa truncation exposes a
// single/frequent pattern the exact histogram does not. Per-object state
// exists only for objects that saw float values. Histogram folds replay
// insertion order, which is exactly associative (ExactMerge).
type approxDetector struct {
	cfg  FineConfig
	objs table[valueHist]
}

func newApproxDetector(cfg FineConfig) Detector {
	return &approxDetector{cfg: cfg}
}

func (d *approxDetector) Reset() { d.objs.reset((*valueHist).reset) }

func (d *approxDetector) Observe(objID int, a gpu.Access) {
	if a.Kind != gpu.KindFloat {
		return
	}
	h, _ := d.objs.at(objID)
	v := Value{Raw: a.Raw, Size: a.Size, Kind: a.Kind}
	h.add(v.Truncate(d.cfg.ApproxMantissaBits), 1, d.cfg.MaxTrackedValues)
}

func (d *approxDetector) Merge(partial Detector) {
	o := partial.(*approxDetector)
	for _, id := range o.objs.ids {
		oh := o.objs.get(id)
		h, _ := d.objs.at(id)
		// Replay in insertion order against d's cap; approximate overflow
		// drops silently (capped replay == trim).
		for _, e := range oh.entries {
			h.add(e.Value, e.Count, d.cfg.MaxTrackedValues)
		}
	}
}

func (d *approxDetector) Finalize(objID int, sh *ObjectShared) (Match, bool) {
	h := d.objs.get(objID)
	if h == nil || h.len() == 0 {
		return Match{}, false
	}
	if _, single := sh.Single(); single {
		return Match{}, false
	}
	// Find the dominant truncated value; insertion order breaks ties, so
	// the first value to reach the top count wins deterministically.
	var best Value
	var bestCnt uint64
	for _, e := range h.entries {
		if e.Count > bestCnt {
			best, bestCnt = e.Value, e.Count
		}
	}
	total := sh.Accesses()
	frac := float64(bestCnt) / float64(total)
	exactTop := uint64(0)
	for _, e := range sh.Values() {
		if e.Count > exactTop {
			exactTop = e.Count
		}
	}
	exactFrac := float64(exactTop) / float64(total)
	// The relaxation must *expose* something exact analysis missed.
	if frac < d.cfg.FrequentThreshold || exactFrac >= d.cfg.FrequentThreshold {
		return Match{}, false
	}
	kind := "frequent values"
	if h.len() == 1 {
		kind = "single value"
	}
	return Match{Kind: ApproximateValues, Fraction: frac,
		Detail: fmt.Sprintf("with %d mantissa bits, %s pattern emerges around %s (%.1f%% of accesses)",
			d.cfg.ApproxMantissaBits, kind, best.Format(), 100*frac)}, true
}
