package vpattern

import (
	"math"
	"sort"

	"valueexpert/gpu"
)

func ellipsis(yes bool) string {
	if yes {
		return ", …"
	}
	return ""
}

// FineConfig tunes fine-grained pattern recognition.
type FineConfig struct {
	// FrequentThreshold 𝒯 is the access share a value must exceed to be
	// "frequent" (Def 3.3). Default 0.5.
	FrequentThreshold float64
	// ApproxMantissaBits 𝒦 is the mantissa precision kept when relaxing
	// float values for approximate-pattern analysis (Def 3.8). Default 10
	// (≈3 decimal digits, within the paper's 2% RMSE budget).
	ApproxMantissaBits int
	// MaxTrackedValues caps the exact-value histogram; beyond it, new
	// distinct values are folded into an overflow count and single/
	// frequent detection degrades conservatively (no false positives).
	// Default 1<<16.
	MaxTrackedValues int
	// StructuredMinR2 is the minimum coefficient of determination for the
	// structured-values linear fit (Def 3.7). Default 0.99.
	StructuredMinR2 float64
	// StructuredMinCount is the minimum number of accesses before a
	// structured fit is attempted. Default 16.
	StructuredMinCount int
}

func (c FineConfig) withDefaults() FineConfig {
	if c.FrequentThreshold == 0 {
		c.FrequentThreshold = 0.5
	}
	if c.ApproxMantissaBits == 0 {
		c.ApproxMantissaBits = 10
	}
	if c.MaxTrackedValues == 0 {
		c.MaxTrackedValues = 1 << 16
	}
	if c.StructuredMinR2 == 0 {
		c.StructuredMinR2 = 0.99
	}
	if c.StructuredMinCount == 0 {
		c.StructuredMinCount = 16
	}
	return c
}

// hash mixes a Value into a table index with a splitmix64-style finalizer.
// Size and Kind fold into the high bits so values differing only in their
// declared type still spread.
func (v Value) hash() uint64 {
	h := v.Raw ^ uint64(v.Size)<<56 ^ uint64(v.Kind)<<48
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

const histMinSlots = 16 // power of two

// valueHist is an insertion-ordered value histogram. Ordering by first
// occurrence makes saturation behaviour and dominant-value selection
// deterministic, and lets two partial histograms merge into exactly the
// state one sequential pass over the concatenated streams would produce:
// replaying a partial's entries in insertion order against the saturation
// cap visits distinct values in global first-occurrence order.
//
// Layout: entries is a flat arena in first-occurrence order; slots is an
// open-addressing index over it (entry index + 1, 0 = empty, linear
// probing, power-of-two sized). Lookups touch one cache line of int32
// slots plus the entry itself — no per-value heap boxes — and a reset
// keeps both allocations, so a reused histogram adds values without
// allocating at all.
type valueHist struct {
	entries []ValueCount
	slots   []int32
}

// add counts n occurrences of v, admitting at most maxTracked distinct
// values. It reports whether v is tracked; untracked occurrences are the
// caller's to account (overflow or silent drop).
func (h *valueHist) add(v Value, n uint64, maxTracked int) bool {
	if len(h.slots) == 0 {
		h.grow(histMinSlots)
	}
	mask := uint64(len(h.slots) - 1)
	i := v.hash() & mask
	for {
		s := h.slots[i]
		if s == 0 {
			break
		}
		if e := &h.entries[s-1]; e.Value == v {
			e.Count += n
			return true
		}
		i = (i + 1) & mask
	}
	if len(h.entries) >= maxTracked {
		return false
	}
	h.entries = append(h.entries, ValueCount{Value: v, Count: n})
	h.slots[i] = int32(len(h.entries))
	// Keep the load factor under 3/4 so probe chains stay short.
	if 4*len(h.entries) >= 3*len(h.slots) {
		h.grow(2 * len(h.slots))
	}
	return true
}

// grow resizes the slot index to n (a power of two) and reindexes every
// entry. Also used to rebuild the index after trim.
func (h *valueHist) grow(n int) {
	if cap(h.slots) >= n {
		h.slots = h.slots[:n]
		clear(h.slots)
	} else {
		h.slots = make([]int32, n)
	}
	mask := uint64(n - 1)
	for idx := range h.entries {
		i := h.entries[idx].Value.hash() & mask
		for h.slots[i] != 0 {
			i = (i + 1) & mask
		}
		h.slots[i] = int32(idx + 1)
	}
}

// trim re-applies a saturation cap to an insertion-ordered histogram,
// returning the total count of evicted occurrences. Equivalent to
// replaying the entries through add with the given cap.
func (h *valueHist) trim(maxTracked int) uint64 {
	if len(h.entries) <= maxTracked {
		return 0
	}
	var evicted uint64
	for _, e := range h.entries[maxTracked:] {
		evicted += e.Count
	}
	h.entries = h.entries[:maxTracked]
	h.grow(len(h.slots))
	return evicted
}

// reset empties the histogram keeping both allocations, so the next use
// adds values without growing.
func (h *valueHist) reset() {
	h.entries = h.entries[:0]
	clear(h.slots)
}

func (h *valueHist) len() int { return len(h.entries) }

// table is a dense arena keyed by allocation ID: index maps an ID to its
// arena slot + 1 (0 = absent), arena stores the states by value in
// first-touch order, and ids remembers which IDs are present so reset and
// iteration never scan the full index. Allocation IDs are small and dense
// (a counter), so the index is a flat slice rather than a map — at() in
// the steady state is two slice loads.
//
// reset keeps every allocation: the index stays at length (only touched
// IDs are zeroed), the arena truncates but retains its slots' interior
// capacities, and at() revives truncated slots by re-extending the arena.
// The invariant making revival safe: reset clears each live slot before
// truncating, so everything between len(arena) and cap(arena) is always
// in its cleared state.
type table[T any] struct {
	index []int32
	ids   []int
	arena []T
}

// get returns id's state, or nil when absent.
func (t *table[T]) get(id int) *T {
	if id < 0 || id >= len(t.index) {
		return nil
	}
	s := t.index[id]
	if s == 0 {
		return nil
	}
	return &t.arena[s-1]
}

// at returns id's state, creating a cleared one if absent. The pointer is
// valid until the next at() call (arena growth may move states).
func (t *table[T]) at(id int) (p *T, created bool) {
	if id >= len(t.index) {
		n := id + 1
		if n < 2*len(t.index) {
			n = 2 * len(t.index)
		}
		if n < 16 {
			n = 16
		}
		idx := make([]int32, n)
		copy(idx, t.index)
		t.index = idx
	}
	if s := t.index[id]; s != 0 {
		return &t.arena[s-1], false
	}
	t.ids = append(t.ids, id)
	if len(t.arena) < cap(t.arena) {
		t.arena = t.arena[:len(t.arena)+1] // revive a cleared slot, keeping its capacities
	} else {
		var zero T
		t.arena = append(t.arena, zero)
	}
	t.index[id] = int32(len(t.arena))
	return &t.arena[len(t.arena)-1], true
}

// reset empties the table in place. clearSlot, when non-nil, clears one
// state preserving its interior allocations; nil zeroes states outright.
func (t *table[T]) reset(clearSlot func(*T)) {
	for _, id := range t.ids {
		t.index[id] = 0
	}
	if clearSlot != nil {
		for i := range t.arena {
			clearSlot(&t.arena[i])
		}
	} else {
		clear(t.arena)
	}
	t.arena = t.arena[:0]
	t.ids = t.ids[:0]
}

// ObjectShared is one data object's shared observation context: the
// access counters and exact-value histogram the accumulator maintains
// once per access, read by every detector at Finalize. Keeping the
// histogram here — rather than per detector — is what lets six detectors
// coexist at the cost the old monolith paid for one.
type ObjectShared struct {
	// Loads and Stores count accesses by direction.
	Loads, Stores uint64
	// Bytes is the total bytes accessed.
	Bytes uint64
	// Overflow counts accesses whose value fell outside the tracked set.
	Overflow uint64

	exact valueHist
	top   []ValueCount
}

// clear empties the state keeping the histogram's and ranking's
// allocations for reuse.
func (sh *ObjectShared) clear() {
	sh.Loads, sh.Stores, sh.Bytes, sh.Overflow = 0, 0, 0, 0
	sh.exact.reset()
	sh.top = sh.top[:0]
}

// Accesses returns the total access count.
func (sh *ObjectShared) Accesses() uint64 { return sh.Loads + sh.Stores }

// Distinct returns the number of distinct exact values tracked (capped).
func (sh *ObjectShared) Distinct() int { return sh.exact.len() }

// Saturated reports whether the histogram cap was reached, making
// distinct/top counts lower bounds.
func (sh *ObjectShared) Saturated() bool { return sh.Overflow > 0 }

// Values returns the exact histogram in first-occurrence order. The
// slice is shared; callers must not mutate it.
func (sh *ObjectShared) Values() []ValueCount { return sh.exact.entries }

// Top returns the ranked most-frequent values (descending count, capped
// at 8), valid during Finalize. The slice is shared; callers must not
// mutate it.
func (sh *ObjectShared) Top() []ValueCount { return sh.top }

// Single returns the object's only value when exactly one distinct value
// was observed and the histogram never saturated.
func (sh *ObjectShared) Single() (Value, bool) {
	if sh.exact.len() == 1 && sh.Overflow == 0 {
		return sh.exact.entries[0].Value, true
	}
	return Value{}, false
}

// rankBefore is the ranking's strict total order: count descending, then
// raw/size/kind ascending, so the top set is reproducible across runs and
// worker configurations.
func rankBefore(a, b ValueCount) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	if a.Value.Raw != b.Value.Raw {
		return a.Value.Raw < b.Value.Raw
	}
	if a.Value.Size != b.Value.Size {
		return a.Value.Size < b.Value.Size
	}
	return a.Value.Kind < b.Value.Kind
}

// rank computes the top-8 values with one bounded-insertion pass over the
// arena entries — no copy of the full histogram, no full sort. Because
// rankBefore is a strict total order, the kept set and its order equal
// those of a full sort truncated to 8.
func (sh *ObjectShared) rank() {
	const topK = 8
	top := sh.top[:0]
	if cap(top) < topK {
		top = make([]ValueCount, 0, topK)
	}
	for _, e := range sh.exact.entries {
		if len(top) == topK && !rankBefore(e, top[topK-1]) {
			continue
		}
		// Insertion position: shift the tail right, drop the overflow.
		pos := len(top)
		for pos > 0 && rankBefore(e, top[pos-1]) {
			pos--
		}
		if len(top) < topK {
			top = append(top, ValueCount{})
		}
		copy(top[pos+1:], top[pos:])
		top[pos] = e
	}
	sh.top = top
}

// FineReport is the fine-grained pattern result for one data object at one
// GPU API.
type FineReport struct {
	ObjectID       int
	Accesses       uint64
	Loads, Stores  uint64
	Bytes          uint64
	DistinctValues int  // exact distinct values observed (capped)
	Saturated      bool // histogram cap reached; counts are lower bounds

	// TopValues are the most frequent values, descending by count.
	TopValues []ValueCount

	Patterns []Match
}

// ValueCount pairs a value with its access count.
type ValueCount struct {
	Value Value
	Count uint64
}

// HasPattern reports whether the report contains a pattern of kind k.
func (r *FineReport) HasPattern(k Kind) bool {
	for _, m := range r.Patterns {
		if m.Kind == k {
			return true
		}
	}
	return false
}

// Pattern returns the match of kind k, if present.
func (r *FineReport) Pattern(k Kind) (Match, bool) {
	for _, m := range r.Patterns {
		if m.Kind == k {
			return m, true
		}
	}
	return Match{}, false
}

// Resetter is the optional detector extension that clears state in place,
// letting the engine pool and reuse per-batch shard accumulators without
// reallocating detector state. A detector without it is rebuilt from its
// registration factory on every shard reset.
type Resetter interface {
	Reset()
}

// FineAccumulator ingests instrumented accesses grouped by data object and
// produces per-object fine-grained pattern reports for the current GPU
// API. It maintains the shared observation context (counters + exact
// histogram) and fans each access out to its detector lineup; matches are
// emitted in detector registration order. Reset between APIs (the online
// analyzer finalizes at each kernel exit).
type FineAccumulator struct {
	cfg  FineConfig
	regs []Registration
	dets []Detector
	// assocDets and naDets split dets by Registration.ExactMerge, so the
	// per-access fan-out and the combine machinery never test flags: the
	// exactly-mergeable detectors can fold in any association, the
	// order-sensitive rest only ever observe whole batches sequentially
	// and merge strictly in flush order.
	assocDets []Detector
	naDets    []Detector
	objs      table[ObjectShared]

	// pending holds shards combined into this one (Combine) whose
	// order-sensitive detector state could not be pre-folded; Merge
	// replays them in flush order and TakePending hands them back to the
	// engine's shard pool.
	pending []*FineAccumulator
}

// NewFineAccumulator creates an accumulator running every fine-grained
// detector enabled by default in the registry.
func NewFineAccumulator(cfg FineConfig) *FineAccumulator {
	return NewFineAccumulatorWith(cfg, FineDetectors(nil))
}

// NewFineAccumulatorWith creates an accumulator running exactly the given
// detector registrations. A detector left out costs nothing per access.
func NewFineAccumulatorWith(cfg FineConfig, regs []Registration) *FineAccumulator {
	fa := &FineAccumulator{cfg: cfg.withDefaults(), regs: regs}
	fa.dets = make([]Detector, len(regs))
	for i, r := range regs {
		fa.dets[i] = r.New(fa.cfg)
	}
	fa.splitDetectors()
	return fa
}

// splitDetectors rebuilds the assoc/order-sensitive views over dets.
func (fa *FineAccumulator) splitDetectors() {
	fa.assocDets = fa.assocDets[:0]
	fa.naDets = fa.naDets[:0]
	for i, r := range fa.regs {
		if r.ExactMerge {
			fa.assocDets = append(fa.assocDets, fa.dets[i])
		} else {
			fa.naDets = append(fa.naDets, fa.dets[i])
		}
	}
}

// NewShard creates an empty accumulator with the same detector lineup and
// an effectively unlimited histogram cap — the partial a pipeline worker
// fills over one flushed batch and hands back to Merge (which re-applies
// fa's cap, preserving global first-occurrence eviction order).
func (fa *FineAccumulator) NewShard() *FineAccumulator {
	cfg := fa.cfg
	cfg.MaxTrackedValues = math.MaxInt
	return NewFineAccumulatorWith(cfg, fa.regs)
}

// addShared folds one access into the object's shared observation context.
func (fa *FineAccumulator) addShared(objID int, a gpu.Access) {
	sh, _ := fa.objs.at(objID)
	if a.Store {
		sh.Stores++
	} else {
		sh.Loads++
	}
	sh.Bytes += uint64(a.Size)

	// Exact histogram (capped).
	v := Value{Raw: a.Raw, Size: a.Size, Kind: a.Kind}
	if !sh.exact.add(v, 1, fa.cfg.MaxTrackedValues) {
		sh.Overflow++
	}
}

// Add records one access belonging to the data object objID.
func (fa *FineAccumulator) Add(objID int, a gpu.Access) {
	fa.addShared(objID, a)
	for _, d := range fa.assocDets {
		d.Observe(objID, a)
	}
	for _, d := range fa.naDets {
		d.Observe(objID, a)
	}
}

// AddAssoc records one access into the shared context and the
// exactly-mergeable detectors only — the per-record work of an intra-batch
// sub-shard. The order-sensitive detectors must then observe the whole
// batch sequentially (ObserveOrderSensitive) on the shard the sub-shards
// fold into, so their state is built by exactly the per-batch sequential
// pass their Merge contract assumes.
func (fa *FineAccumulator) AddAssoc(objID int, a gpu.Access) {
	fa.addShared(objID, a)
	for _, d := range fa.assocDets {
		d.Observe(objID, a)
	}
}

// ObserveOrderSensitive feeds one access to the order-sensitive detectors
// only — the sequential whole-batch pass paired with AddAssoc.
func (fa *FineAccumulator) ObserveOrderSensitive(objID int, a gpu.Access) {
	for _, d := range fa.naDets {
		d.Observe(objID, a)
	}
}

// OrderSensitive reports whether the lineup contains detectors that
// require the sequential whole-batch pass.
func (fa *FineAccumulator) OrderSensitive() bool { return len(fa.naDets) > 0 }

// foldShared replays other's shared per-object state into fa in insertion
// order — identical saturation decisions to a sequential pass over fa's
// stream followed by other's.
func (fa *FineAccumulator) foldShared(other *FineAccumulator) {
	for _, id := range other.objs.ids {
		ob := other.objs.get(id)
		sh, _ := fa.objs.at(id)
		sh.Loads += ob.Loads
		sh.Stores += ob.Stores
		sh.Bytes += ob.Bytes
		for _, e := range ob.exact.entries {
			if !sh.exact.add(e.Value, e.Count, fa.cfg.MaxTrackedValues) {
				sh.Overflow += e.Count
			}
		}
		sh.Overflow += ob.Overflow
	}
}

// FoldAssoc folds an intra-batch sub-shard built with AddAssoc into fa:
// the shared context and the exactly-mergeable detectors. Sub-shards fold
// in record-range order, reproducing the batch's sequential insertion
// order; the order-sensitive detectors are untouched (they never observed
// the sub-shard's records).
func (fa *FineAccumulator) FoldAssoc(sub *FineAccumulator) {
	fa.foldShared(sub)
	for i, d := range fa.assocDets {
		d.Merge(sub.assocDets[i])
	}
}

// Combine pre-folds shard other — the batch flushed immediately after
// fa's — into fa, off the collector's critical path. Everything exactly
// mergeable (shared context, ExactMerge detectors) folds now; the
// order-sensitive detectors' merges are deferred: other rides along in
// fa.pending and Merge replays it in flush order, so the master's state
// stays bit-identical to absorbing the two shards separately.
func (fa *FineAccumulator) Combine(other *FineAccumulator) {
	fa.foldShared(other)
	for i, d := range fa.assocDets {
		d.Merge(other.assocDets[i])
	}
	fa.pending = append(fa.pending, other)
	fa.pending = append(fa.pending, other.pending...)
	other.pending = other.pending[:0]
}

// TakePending returns and clears the shards combined into fa whose
// order-sensitive detector state was deferred; after Merge(fa) the engine
// recycles them alongside fa itself.
func (fa *FineAccumulator) TakePending() []*FineAccumulator {
	p := fa.pending
	fa.pending = fa.pending[:0]
	return p
}

// Merge folds a partial accumulator into fa, producing exactly the state a
// single accumulator would hold after ingesting fa's access stream followed
// by other's (and, in order, any shards Combined into other). Pipelined
// analysis builds one uncapped partial per flushed batch on worker
// goroutines (shard pool) and merges them here in batch order, so the
// merged state — and hence the finalized report — is independent of worker
// count and scheduling. Merge requires other to run the same detector
// lineup; it reads other's state without consuming it, leaving the shard
// to the engine's pool (Reset) or the collector's discard.
func (fa *FineAccumulator) Merge(other *FineAccumulator) {
	fa.foldShared(other)
	for i, d := range fa.assocDets {
		d.Merge(other.assocDets[i])
	}
	for i, d := range fa.naDets {
		d.Merge(other.naDets[i])
		for _, s := range other.pending {
			d.Merge(s.naDets[i])
		}
	}
}

// Objects returns the IDs with accumulated accesses.
func (fa *FineAccumulator) Objects() []int {
	ids := append([]int(nil), fa.objs.ids...)
	sort.Ints(ids)
	return ids
}

// Reset clears all accumulated state for the next GPU API (or the next
// batch, for pooled shards) — in place: the object table, histograms, and
// detectors that implement Resetter keep their allocations, so a reused
// accumulator's Add path is allocation-free in the steady state.
func (fa *FineAccumulator) Reset() {
	fa.objs.reset((*ObjectShared).clear)
	fa.pending = fa.pending[:0]
	rebuilt := false
	for i, d := range fa.dets {
		if r, ok := d.(Resetter); ok {
			r.Reset()
		} else {
			fa.dets[i] = fa.regs[i].New(fa.cfg)
			rebuilt = true
		}
	}
	if rebuilt {
		fa.splitDetectors()
	}
}

// Finalize computes fine-grained pattern reports for every accumulated
// object, ordered by object ID.
func (fa *FineAccumulator) Finalize() []FineReport {
	var out []FineReport
	for _, id := range fa.Objects() {
		out = append(out, fa.finalizeObject(id, fa.objs.get(id)))
	}
	return out
}

func (fa *FineAccumulator) finalizeObject(id int, sh *ObjectShared) FineReport {
	total := sh.Accesses()
	r := FineReport{
		ObjectID: id, Accesses: total, Loads: sh.Loads, Stores: sh.Stores,
		Bytes: sh.Bytes, DistinctValues: sh.Distinct(), Saturated: sh.Saturated(),
	}
	if total == 0 {
		return r
	}
	sh.rank()
	r.TopValues = sh.top
	for _, d := range fa.dets {
		if m, ok := d.Finalize(id, sh); ok {
			r.Patterns = append(r.Patterns, m)
		}
	}
	return r
}
