package vpattern

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"valueexpert/gpu"
)

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func ellipsis(yes bool) string {
	if yes {
		return ", …"
	}
	return ""
}

// FineConfig tunes fine-grained pattern recognition.
type FineConfig struct {
	// FrequentThreshold 𝒯 is the access share a value must exceed to be
	// "frequent" (Def 3.3). Default 0.5.
	FrequentThreshold float64
	// ApproxMantissaBits 𝒦 is the mantissa precision kept when relaxing
	// float values for approximate-pattern analysis (Def 3.8). Default 10
	// (≈3 decimal digits, within the paper's 2% RMSE budget).
	ApproxMantissaBits int
	// MaxTrackedValues caps the exact-value histogram; beyond it, new
	// distinct values are folded into an overflow count and single/
	// frequent detection degrades conservatively (no false positives).
	// Default 1<<16.
	MaxTrackedValues int
	// StructuredMinR2 is the minimum coefficient of determination for the
	// structured-values linear fit (Def 3.7). Default 0.99.
	StructuredMinR2 float64
	// StructuredMinCount is the minimum number of accesses before a
	// structured fit is attempted. Default 16.
	StructuredMinCount int
}

func (c FineConfig) withDefaults() FineConfig {
	if c.FrequentThreshold == 0 {
		c.FrequentThreshold = 0.5
	}
	if c.ApproxMantissaBits == 0 {
		c.ApproxMantissaBits = 10
	}
	if c.MaxTrackedValues == 0 {
		c.MaxTrackedValues = 1 << 16
	}
	if c.StructuredMinR2 == 0 {
		c.StructuredMinR2 = 0.99
	}
	if c.StructuredMinCount == 0 {
		c.StructuredMinCount = 16
	}
	return c
}

// valueHist is an insertion-ordered value histogram. Ordering by first
// occurrence makes saturation behaviour and dominant-value selection
// deterministic, and lets two partial histograms merge into exactly the
// state one sequential pass over the concatenated streams would produce:
// replaying a partial's entries in insertion order against the saturation
// cap visits distinct values in global first-occurrence order.
type valueHist struct {
	idx     map[Value]int
	entries []ValueCount
}

func newValueHist() *valueHist { return &valueHist{idx: make(map[Value]int)} }

// add counts n occurrences of v, admitting at most maxTracked distinct
// values. It reports whether v is tracked; untracked occurrences are the
// caller's to account (overflow or silent drop).
func (h *valueHist) add(v Value, n uint64, maxTracked int) bool {
	if i, ok := h.idx[v]; ok {
		h.entries[i].Count += n
		return true
	}
	if len(h.entries) >= maxTracked {
		return false
	}
	h.idx[v] = len(h.entries)
	h.entries = append(h.entries, ValueCount{Value: v, Count: n})
	return true
}

// trim re-applies a saturation cap to an insertion-ordered histogram,
// returning the total count of evicted occurrences. Equivalent to
// replaying the entries through add with the given cap.
func (h *valueHist) trim(maxTracked int) uint64 {
	if len(h.entries) <= maxTracked {
		return 0
	}
	var evicted uint64
	for _, e := range h.entries[maxTracked:] {
		evicted += e.Count
		delete(h.idx, e.Value)
	}
	h.entries = h.entries[:maxTracked]
	return evicted
}

func (h *valueHist) len() int { return len(h.entries) }

// objectState accumulates one data object's accesses during one GPU API.
type objectState struct {
	loads, stores uint64
	bytes         uint64

	// Exact and mantissa-truncated value histograms.
	exact    *valueHist
	approx   *valueHist
	overflow uint64 // accesses whose value fell outside the tracked set

	// Declared access type: the widest (kind, size) seen; a conflict in
	// kinds downgrades to unknown.
	at        gpu.AccessType
	atConsist bool

	// Value-range tracking for heavy type.
	minI, maxI   int64
	minU, maxU   uint64
	allF64AsF32  bool
	sawInt, sawU bool
	sawFloat     bool

	// Streaming sums for the structured-values least-squares fit
	// (x = element index relative to the first accessed address, keeping
	// magnitudes small enough that the sums stay numerically stable).
	n                          float64
	x0                         float64
	x0set                      bool
	sumX, sumY, sumXX, sumRes  float64
	sumXY, sumYY               float64
	minAddr, maxAddr, elemSize uint64

	// fitSkew marks that merged partials derived element indices from
	// different element sizes, so the combined least-squares sums are not
	// over a common index axis and the structured fit must be skipped.
	fitSkew bool
}

// FineReport is the fine-grained pattern result for one data object at one
// GPU API.
type FineReport struct {
	ObjectID       int
	Accesses       uint64
	Loads, Stores  uint64
	Bytes          uint64
	DistinctValues int  // exact distinct values observed (capped)
	Saturated      bool // histogram cap reached; counts are lower bounds

	// TopValues are the most frequent values, descending by count.
	TopValues []ValueCount

	Patterns []Match
}

// ValueCount pairs a value with its access count.
type ValueCount struct {
	Value Value
	Count uint64
}

// HasPattern reports whether the report contains a pattern of kind k.
func (r *FineReport) HasPattern(k Kind) bool {
	for _, m := range r.Patterns {
		if m.Kind == k {
			return true
		}
	}
	return false
}

// Pattern returns the match of kind k, if present.
func (r *FineReport) Pattern(k Kind) (Match, bool) {
	for _, m := range r.Patterns {
		if m.Kind == k {
			return m, true
		}
	}
	return Match{}, false
}

// FineAccumulator ingests instrumented accesses grouped by data object and
// produces per-object fine-grained pattern reports for the current GPU
// API. Reset between APIs (the online analyzer finalizes at each kernel
// exit).
type FineAccumulator struct {
	cfg  FineConfig
	objs map[int]*objectState
}

// NewFineAccumulator creates an accumulator with the given configuration.
func NewFineAccumulator(cfg FineConfig) *FineAccumulator {
	return &FineAccumulator{cfg: cfg.withDefaults(), objs: make(map[int]*objectState)}
}

// Add records one access belonging to the data object objID.
func (fa *FineAccumulator) Add(objID int, a gpu.Access) {
	st := fa.objs[objID]
	if st == nil {
		st = &objectState{
			exact: newValueHist(), approx: newValueHist(),
			atConsist: true, allF64AsF32: true,
			minI: math.MaxInt64, maxI: math.MinInt64,
			minU:    math.MaxUint64,
			minAddr: math.MaxUint64,
		}
		fa.objs[objID] = st
	}
	if a.Store {
		st.stores++
	} else {
		st.loads++
	}
	st.bytes += uint64(a.Size)

	v := Value{Raw: a.Raw, Size: a.Size, Kind: a.Kind}

	// Access-type consistency: the object-level declared type is the one
	// all accesses agree on; disagreement means opaque bits.
	at := gpu.AccessType{Kind: a.Kind, Size: a.Size}
	if st.loads+st.stores == 1 {
		st.at = at
	} else if st.at != at {
		st.atConsist = false
	}

	// Exact histogram (capped).
	if !st.exact.add(v, 1, fa.cfg.MaxTrackedValues) {
		st.overflow++
	}

	// Truncated histogram for approximate analysis (floats only).
	if a.Kind == gpu.KindFloat {
		st.approx.add(v.Truncate(fa.cfg.ApproxMantissaBits), 1, fa.cfg.MaxTrackedValues)
	}

	// Range tracking for heavy type.
	switch a.Kind {
	case gpu.KindInt:
		st.sawInt = true
		s := signExtend(a.Raw, a.Size)
		if s < st.minI {
			st.minI = s
		}
		if s > st.maxI {
			st.maxI = s
		}
	case gpu.KindUint:
		st.sawU = true
		if a.Raw < st.minU {
			st.minU = a.Raw
		}
		if a.Raw > st.maxU {
			st.maxU = a.Raw
		}
	case gpu.KindFloat:
		st.sawFloat = true
		if a.Size == 8 {
			f := gpu.Float64FromRaw(a.Raw)
			if float64(float32(f)) != f {
				st.allF64AsF32 = false
			}
		}
	}

	// Structured-values sums: x is the element index derived from the
	// address, y the numeric value.
	if st.elemSize == 0 {
		st.elemSize = uint64(a.Size)
	}
	if a.Addr < st.minAddr {
		st.minAddr = a.Addr
	}
	if a.Addr > st.maxAddr {
		st.maxAddr = a.Addr
	}
	if !st.x0set {
		st.x0 = float64(a.Addr / st.elemSize)
		st.x0set = true
	}
	x := float64(a.Addr/st.elemSize) - st.x0 // monotone in address
	y := v.Numeric()
	if !math.IsNaN(y) && !math.IsInf(y, 0) {
		st.n++
		st.sumX += x
		st.sumY += y
		st.sumXX += x * x
		st.sumXY += x * y
		st.sumYY += y * y
	}
}

// Merge folds a partial accumulator into fa, producing exactly the state a
// single accumulator would hold after ingesting fa's access stream followed
// by other's. Pipelined analysis builds one uncapped partial per flushed
// batch on worker goroutines and merges them here in batch order, so the
// merged state — and hence the finalized report — is independent of worker
// count and scheduling. Partials should be built with an effectively
// unlimited MaxTrackedValues (saturation is re-applied against fa's cap
// during the merge, preserving global first-occurrence eviction order).
// Merge takes ownership of other's object states; other must not be used
// afterwards.
func (fa *FineAccumulator) Merge(other *FineAccumulator) {
	for id, ob := range other.objs {
		st := fa.objs[id]
		if st == nil {
			// Adopt wholesale, then re-apply fa's saturation cap: trimming
			// an insertion-ordered histogram equals replaying it capped.
			ob.overflow += ob.exact.trim(fa.cfg.MaxTrackedValues)
			ob.approx.trim(fa.cfg.MaxTrackedValues) // approx drops silently
			fa.objs[id] = ob
			continue
		}

		st.loads += ob.loads
		st.stores += ob.stores
		st.bytes += ob.bytes

		// Replay the partial's histograms in insertion order against fa's
		// cap — identical saturation decisions to a sequential pass.
		for _, e := range ob.exact.entries {
			if !st.exact.add(e.Value, e.Count, fa.cfg.MaxTrackedValues) {
				st.overflow += e.Count
			}
		}
		st.overflow += ob.overflow
		for _, e := range ob.approx.entries {
			st.approx.add(e.Value, e.Count, fa.cfg.MaxTrackedValues)
		}

		// Declared access type: consistent only if both halves are
		// internally consistent and agree; st.at stays first-seen.
		if !ob.atConsist || st.at != ob.at {
			st.atConsist = false
		}

		// Range tracking: the sentinels used at init make unconditional
		// min/max folds correct even when one side never saw that kind.
		if ob.minI < st.minI {
			st.minI = ob.minI
		}
		if ob.maxI > st.maxI {
			st.maxI = ob.maxI
		}
		if ob.minU < st.minU {
			st.minU = ob.minU
		}
		if ob.maxU > st.maxU {
			st.maxU = ob.maxU
		}
		st.allF64AsF32 = st.allF64AsF32 && ob.allF64AsF32
		st.sawInt = st.sawInt || ob.sawInt
		st.sawU = st.sawU || ob.sawU
		st.sawFloat = st.sawFloat || ob.sawFloat

		if ob.minAddr < st.minAddr {
			st.minAddr = ob.minAddr
		}
		if ob.maxAddr > st.maxAddr {
			st.maxAddr = ob.maxAddr
		}
		st.fitSkew = st.fitSkew || ob.fitSkew
		if ob.elemSize != 0 && st.elemSize != 0 && ob.elemSize != st.elemSize {
			// The two partials indexed elements on different strides; their
			// least-squares sums cannot be placed on a common axis.
			st.fitSkew = true
		}
		if st.elemSize == 0 {
			st.elemSize = ob.elemSize
		}

		// Least-squares sums: shift the partial's element indices from its
		// local origin ob.x0 onto st's axis (d = ob.x0 - st.x0, so each of
		// ob's indices x becomes x + d), which rebases the sums in closed
		// form.
		if ob.x0set {
			if !st.x0set {
				st.x0, st.x0set = ob.x0, true
				st.n += ob.n
				st.sumX += ob.sumX
				st.sumY += ob.sumY
				st.sumXX += ob.sumXX
				st.sumXY += ob.sumXY
				st.sumYY += ob.sumYY
			} else {
				d := ob.x0 - st.x0
				st.n += ob.n
				st.sumX += ob.sumX + ob.n*d
				st.sumY += ob.sumY
				st.sumXX += ob.sumXX + 2*d*ob.sumX + ob.n*d*d
				st.sumXY += ob.sumXY + d*ob.sumY
				st.sumYY += ob.sumYY
			}
		}
	}
	other.objs = nil
}

// Objects returns the IDs with accumulated accesses.
func (fa *FineAccumulator) Objects() []int {
	ids := make([]int, 0, len(fa.objs))
	for id := range fa.objs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Reset clears all accumulated state for the next GPU API.
func (fa *FineAccumulator) Reset() { fa.objs = make(map[int]*objectState) }

// Finalize computes fine-grained pattern reports for every accumulated
// object, ordered by object ID.
func (fa *FineAccumulator) Finalize() []FineReport {
	var out []FineReport
	for _, id := range fa.Objects() {
		out = append(out, fa.finalizeObject(id, fa.objs[id]))
	}
	return out
}

func (fa *FineAccumulator) finalizeObject(id int, st *objectState) FineReport {
	total := st.loads + st.stores
	r := FineReport{
		ObjectID: id, Accesses: total, Loads: st.loads, Stores: st.stores,
		Bytes: st.bytes, DistinctValues: st.exact.len(), Saturated: st.overflow > 0,
	}
	if total == 0 {
		return r
	}

	// Rank values by count, with a total order on ties so the ranking is
	// reproducible across runs and worker configurations.
	r.TopValues = append(r.TopValues, st.exact.entries...)
	sort.Slice(r.TopValues, func(i, j int) bool {
		a, b := r.TopValues[i], r.TopValues[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Value.Raw != b.Value.Raw {
			return a.Value.Raw < b.Value.Raw
		}
		if a.Value.Size != b.Value.Size {
			return a.Value.Size < b.Value.Size
		}
		return a.Value.Kind < b.Value.Kind
	})
	if len(r.TopValues) > 8 {
		r.TopValues = r.TopValues[:8]
	}

	// Single value / single zero / frequent values (Defs 3.3–3.5).
	exactSingle := false
	if st.exact.len() == 1 && st.overflow == 0 {
		exactSingle = true
		v := r.TopValues[0].Value
		if v.IsZero() {
			r.Patterns = append(r.Patterns, Match{Kind: SingleZero, Fraction: 1,
				Detail: "all accessed values are zero"})
		}
		r.Patterns = append(r.Patterns, Match{Kind: SingleValue, Fraction: 1,
			Detail: fmt.Sprintf("all accesses see value %s", v.Format())})
	}
	if !exactSingle && len(r.TopValues) > 0 {
		// Frequent values (Def 3.3): "accesses to one or more particular
		// values" — the smallest set of hot values (capped at 8) whose
		// cumulative access share reaches the threshold 𝒯.
		var cum uint64
		hot := 0
		for _, vc := range r.TopValues {
			cum += vc.Count
			hot++
			if float64(cum)/float64(total) >= fa.cfg.FrequentThreshold {
				break
			}
		}
		frac := float64(cum) / float64(total)
		if frac >= fa.cfg.FrequentThreshold {
			names := make([]string, 0, 3)
			for _, vc := range r.TopValues[:min(hot, 3)] {
				names = append(names, vc.Value.Format())
			}
			r.Patterns = append(r.Patterns, Match{Kind: FrequentValues, Fraction: frac,
				Detail: fmt.Sprintf("%d hot value(s) {%s%s} account for %.1f%% of accesses",
					hot, strings.Join(names, ", "), ellipsis(hot > 3), 100*frac)})
		}
	}

	// Heavy type (Def 3.6).
	if st.atConsist {
		if m, ok := fa.heavyType(st); ok {
			r.Patterns = append(r.Patterns, m)
		}
	}

	// Structured values (Def 3.7): linear value↔address correlation.
	if st.n >= float64(fa.cfg.StructuredMinCount) && !st.fitSkew {
		if m, ok := fa.structured(st); ok {
			r.Patterns = append(r.Patterns, m)
		}
	}

	// Approximate values (Def 3.8): the truncated histogram exposes a
	// single/frequent pattern the exact one does not.
	if st.sawFloat && !exactSingle && st.approx.len() > 0 {
		if m, ok := fa.approximate(st, total); ok {
			r.Patterns = append(r.Patterns, m)
		}
	}
	return r
}

func (fa *FineAccumulator) heavyType(st *objectState) (Match, bool) {
	declared := st.at
	switch {
	case st.sawInt && declared.Size >= 2:
		need := intWidth(st.minI, st.maxI)
		if need < declared.Size {
			return Match{Kind: HeavyType,
				Fraction: 1 - float64(need)/float64(declared.Size),
				Detail: fmt.Sprintf("int%d values fit in int%d (range [%d,%d])",
					8*declared.Size, 8*need, st.minI, st.maxI)}, true
		}
	case st.sawU && declared.Size >= 2:
		need := uintWidth(st.maxU)
		if need < declared.Size {
			return Match{Kind: HeavyType,
				Fraction: 1 - float64(need)/float64(declared.Size),
				Detail: fmt.Sprintf("uint%d values fit in uint%d (max %d)",
					8*declared.Size, 8*need, st.maxU)}, true
		}
	case st.sawFloat && declared.Size == 8 && st.allF64AsF32:
		return Match{Kind: HeavyType, Fraction: 0.5,
			Detail: "float64 values are exactly representable as float32"}, true
	case st.sawFloat && st.exact.len() >= 2 && st.exact.len() <= 256 && st.overflow == 0 &&
		st.loads+st.stores >= 4*uint64(st.exact.len()):
		// A tiny dictionary of float values (e.g. lavaMD's rA drawn from
		// {0.1..1.0}) can travel as uint8 indices (paper §8.6).
		return Match{Kind: HeavyType,
			Fraction: 1 - float64(1)/float64(declared.Size),
			Detail: fmt.Sprintf("float%d values drawn from %d distinct values; index with uint8",
				8*declared.Size, st.exact.len())}, true
	}
	return Match{}, false
}

func intWidth(lo, hi int64) uint8 {
	for _, w := range []uint8{1, 2, 4} {
		min := -(int64(1) << (8*w - 1))
		max := int64(1)<<(8*w-1) - 1
		if lo >= min && hi <= max {
			return w
		}
	}
	return 8
}

func uintWidth(hi uint64) uint8 {
	switch {
	case hi <= math.MaxUint8:
		return 1
	case hi <= math.MaxUint16:
		return 2
	case hi <= math.MaxUint32:
		return 4
	}
	return 8
}

func (fa *FineAccumulator) structured(st *objectState) (Match, bool) {
	n := st.n
	den := n*st.sumXX - st.sumX*st.sumX
	if den == 0 {
		return Match{}, false
	}
	varY := n*st.sumYY - st.sumY*st.sumY
	if varY <= 0 {
		// Constant values: that's single value, not structured.
		return Match{}, false
	}
	slope := (n*st.sumXY - st.sumX*st.sumY) / den
	// Intercept at the first accessed element (index 0 of the fit),
	// which for whole-array sweeps is the object's first element.
	intercept := (st.sumY - slope*st.sumX) / n
	r := (n*st.sumXY - st.sumX*st.sumY) / math.Sqrt(den*varY)
	r2 := r * r
	if math.IsNaN(r2) || r2 < fa.cfg.StructuredMinR2 || slope == 0 {
		return Match{}, false
	}
	return Match{Kind: StructuredValues, Fraction: r2,
		Detail: fmt.Sprintf("value ≈ %.6g·index %+.6g (r²=%.4f, index from first accessed element)",
			slope, intercept, r2)}, true
}

func (fa *FineAccumulator) approximate(st *objectState, total uint64) (Match, bool) {
	// Find the dominant truncated value; insertion order breaks ties, so
	// the first value to reach the top count wins deterministically.
	var best Value
	var bestCnt uint64
	for _, e := range st.approx.entries {
		if e.Count > bestCnt {
			best, bestCnt = e.Value, e.Count
		}
	}
	frac := float64(bestCnt) / float64(total)
	exactTop := uint64(0)
	for _, e := range st.exact.entries {
		if e.Count > exactTop {
			exactTop = e.Count
		}
	}
	exactFrac := float64(exactTop) / float64(total)
	// The relaxation must *expose* something exact analysis missed.
	if frac < fa.cfg.FrequentThreshold || exactFrac >= fa.cfg.FrequentThreshold {
		return Match{}, false
	}
	kind := "frequent values"
	if st.approx.len() == 1 {
		kind = "single value"
	}
	return Match{Kind: ApproximateValues, Fraction: frac,
		Detail: fmt.Sprintf("with %d mantissa bits, %s pattern emerges around %s (%.1f%% of accesses)",
			fa.cfg.ApproxMantissaBits, kind, best.Format(), 100*frac)}, true
}
