package vpattern

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"valueexpert/gpu"
)

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func ellipsis(yes bool) string {
	if yes {
		return ", …"
	}
	return ""
}

// FineConfig tunes fine-grained pattern recognition.
type FineConfig struct {
	// FrequentThreshold 𝒯 is the access share a value must exceed to be
	// "frequent" (Def 3.3). Default 0.5.
	FrequentThreshold float64
	// ApproxMantissaBits 𝒦 is the mantissa precision kept when relaxing
	// float values for approximate-pattern analysis (Def 3.8). Default 10
	// (≈3 decimal digits, within the paper's 2% RMSE budget).
	ApproxMantissaBits int
	// MaxTrackedValues caps the exact-value histogram; beyond it, new
	// distinct values are folded into an overflow count and single/
	// frequent detection degrades conservatively (no false positives).
	// Default 1<<16.
	MaxTrackedValues int
	// StructuredMinR2 is the minimum coefficient of determination for the
	// structured-values linear fit (Def 3.7). Default 0.99.
	StructuredMinR2 float64
	// StructuredMinCount is the minimum number of accesses before a
	// structured fit is attempted. Default 16.
	StructuredMinCount int
}

func (c FineConfig) withDefaults() FineConfig {
	if c.FrequentThreshold == 0 {
		c.FrequentThreshold = 0.5
	}
	if c.ApproxMantissaBits == 0 {
		c.ApproxMantissaBits = 10
	}
	if c.MaxTrackedValues == 0 {
		c.MaxTrackedValues = 1 << 16
	}
	if c.StructuredMinR2 == 0 {
		c.StructuredMinR2 = 0.99
	}
	if c.StructuredMinCount == 0 {
		c.StructuredMinCount = 16
	}
	return c
}

// objectState accumulates one data object's accesses during one GPU API.
type objectState struct {
	loads, stores uint64
	bytes         uint64

	// Exact and mantissa-truncated value histograms.
	exact    map[Value]uint64
	approx   map[Value]uint64
	overflow uint64 // accesses whose value fell outside the tracked set

	// Declared access type: the widest (kind, size) seen; a conflict in
	// kinds downgrades to unknown.
	at        gpu.AccessType
	atConsist bool

	// Value-range tracking for heavy type.
	minI, maxI   int64
	minU, maxU   uint64
	allF64AsF32  bool
	sawInt, sawU bool
	sawFloat     bool

	// Streaming sums for the structured-values least-squares fit
	// (x = element index relative to the first accessed address, keeping
	// magnitudes small enough that the sums stay numerically stable).
	n                          float64
	x0                         float64
	x0set                      bool
	sumX, sumY, sumXX, sumRes  float64
	sumXY, sumYY               float64
	minAddr, maxAddr, elemSize uint64
}

// FineReport is the fine-grained pattern result for one data object at one
// GPU API.
type FineReport struct {
	ObjectID       int
	Accesses       uint64
	Loads, Stores  uint64
	Bytes          uint64
	DistinctValues int  // exact distinct values observed (capped)
	Saturated      bool // histogram cap reached; counts are lower bounds

	// TopValues are the most frequent values, descending by count.
	TopValues []ValueCount

	Patterns []Match
}

// ValueCount pairs a value with its access count.
type ValueCount struct {
	Value Value
	Count uint64
}

// HasPattern reports whether the report contains a pattern of kind k.
func (r *FineReport) HasPattern(k Kind) bool {
	for _, m := range r.Patterns {
		if m.Kind == k {
			return true
		}
	}
	return false
}

// Pattern returns the match of kind k, if present.
func (r *FineReport) Pattern(k Kind) (Match, bool) {
	for _, m := range r.Patterns {
		if m.Kind == k {
			return m, true
		}
	}
	return Match{}, false
}

// FineAccumulator ingests instrumented accesses grouped by data object and
// produces per-object fine-grained pattern reports for the current GPU
// API. Reset between APIs (the online analyzer finalizes at each kernel
// exit).
type FineAccumulator struct {
	cfg  FineConfig
	objs map[int]*objectState
}

// NewFineAccumulator creates an accumulator with the given configuration.
func NewFineAccumulator(cfg FineConfig) *FineAccumulator {
	return &FineAccumulator{cfg: cfg.withDefaults(), objs: make(map[int]*objectState)}
}

// Add records one access belonging to the data object objID.
func (fa *FineAccumulator) Add(objID int, a gpu.Access) {
	st := fa.objs[objID]
	if st == nil {
		st = &objectState{
			exact: make(map[Value]uint64), approx: make(map[Value]uint64),
			atConsist: true, allF64AsF32: true,
			minI: math.MaxInt64, maxI: math.MinInt64,
			minU:    math.MaxUint64,
			minAddr: math.MaxUint64,
		}
		fa.objs[objID] = st
	}
	if a.Store {
		st.stores++
	} else {
		st.loads++
	}
	st.bytes += uint64(a.Size)

	v := Value{Raw: a.Raw, Size: a.Size, Kind: a.Kind}

	// Access-type consistency: the object-level declared type is the one
	// all accesses agree on; disagreement means opaque bits.
	at := gpu.AccessType{Kind: a.Kind, Size: a.Size}
	if st.loads+st.stores == 1 {
		st.at = at
	} else if st.at != at {
		st.atConsist = false
	}

	// Exact histogram (capped).
	if cnt, ok := st.exact[v]; ok {
		st.exact[v] = cnt + 1
	} else if len(st.exact) < fa.cfg.MaxTrackedValues {
		st.exact[v] = 1
	} else {
		st.overflow++
	}

	// Truncated histogram for approximate analysis (floats only).
	if a.Kind == gpu.KindFloat {
		tv := v.Truncate(fa.cfg.ApproxMantissaBits)
		if cnt, ok := st.approx[tv]; ok {
			st.approx[tv] = cnt + 1
		} else if len(st.approx) < fa.cfg.MaxTrackedValues {
			st.approx[tv] = 1
		}
	}

	// Range tracking for heavy type.
	switch a.Kind {
	case gpu.KindInt:
		st.sawInt = true
		s := signExtend(a.Raw, a.Size)
		if s < st.minI {
			st.minI = s
		}
		if s > st.maxI {
			st.maxI = s
		}
	case gpu.KindUint:
		st.sawU = true
		if a.Raw < st.minU {
			st.minU = a.Raw
		}
		if a.Raw > st.maxU {
			st.maxU = a.Raw
		}
	case gpu.KindFloat:
		st.sawFloat = true
		if a.Size == 8 {
			f := gpu.Float64FromRaw(a.Raw)
			if float64(float32(f)) != f {
				st.allF64AsF32 = false
			}
		}
	}

	// Structured-values sums: x is the element index derived from the
	// address, y the numeric value.
	if st.elemSize == 0 {
		st.elemSize = uint64(a.Size)
	}
	if a.Addr < st.minAddr {
		st.minAddr = a.Addr
	}
	if a.Addr > st.maxAddr {
		st.maxAddr = a.Addr
	}
	if !st.x0set {
		st.x0 = float64(a.Addr / st.elemSize)
		st.x0set = true
	}
	x := float64(a.Addr/st.elemSize) - st.x0 // monotone in address
	y := v.Numeric()
	if !math.IsNaN(y) && !math.IsInf(y, 0) {
		st.n++
		st.sumX += x
		st.sumY += y
		st.sumXX += x * x
		st.sumXY += x * y
		st.sumYY += y * y
	}
}

// Objects returns the IDs with accumulated accesses.
func (fa *FineAccumulator) Objects() []int {
	ids := make([]int, 0, len(fa.objs))
	for id := range fa.objs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Reset clears all accumulated state for the next GPU API.
func (fa *FineAccumulator) Reset() { fa.objs = make(map[int]*objectState) }

// Finalize computes fine-grained pattern reports for every accumulated
// object, ordered by object ID.
func (fa *FineAccumulator) Finalize() []FineReport {
	var out []FineReport
	for _, id := range fa.Objects() {
		out = append(out, fa.finalizeObject(id, fa.objs[id]))
	}
	return out
}

func (fa *FineAccumulator) finalizeObject(id int, st *objectState) FineReport {
	total := st.loads + st.stores
	r := FineReport{
		ObjectID: id, Accesses: total, Loads: st.loads, Stores: st.stores,
		Bytes: st.bytes, DistinctValues: len(st.exact), Saturated: st.overflow > 0,
	}
	if total == 0 {
		return r
	}

	// Rank values by count.
	for v, c := range st.exact {
		r.TopValues = append(r.TopValues, ValueCount{Value: v, Count: c})
	}
	sort.Slice(r.TopValues, func(i, j int) bool {
		if r.TopValues[i].Count != r.TopValues[j].Count {
			return r.TopValues[i].Count > r.TopValues[j].Count
		}
		return r.TopValues[i].Value.Raw < r.TopValues[j].Value.Raw
	})
	if len(r.TopValues) > 8 {
		r.TopValues = r.TopValues[:8]
	}

	// Single value / single zero / frequent values (Defs 3.3–3.5).
	exactSingle := false
	if len(st.exact) == 1 && st.overflow == 0 {
		exactSingle = true
		v := r.TopValues[0].Value
		if v.IsZero() {
			r.Patterns = append(r.Patterns, Match{Kind: SingleZero, Fraction: 1,
				Detail: "all accessed values are zero"})
		}
		r.Patterns = append(r.Patterns, Match{Kind: SingleValue, Fraction: 1,
			Detail: fmt.Sprintf("all accesses see value %s", v.Format())})
	}
	if !exactSingle && len(r.TopValues) > 0 {
		// Frequent values (Def 3.3): "accesses to one or more particular
		// values" — the smallest set of hot values (capped at 8) whose
		// cumulative access share reaches the threshold 𝒯.
		var cum uint64
		hot := 0
		for _, vc := range r.TopValues {
			cum += vc.Count
			hot++
			if float64(cum)/float64(total) >= fa.cfg.FrequentThreshold {
				break
			}
		}
		frac := float64(cum) / float64(total)
		if frac >= fa.cfg.FrequentThreshold {
			names := make([]string, 0, 3)
			for _, vc := range r.TopValues[:min(hot, 3)] {
				names = append(names, vc.Value.Format())
			}
			r.Patterns = append(r.Patterns, Match{Kind: FrequentValues, Fraction: frac,
				Detail: fmt.Sprintf("%d hot value(s) {%s%s} account for %.1f%% of accesses",
					hot, strings.Join(names, ", "), ellipsis(hot > 3), 100*frac)})
		}
	}

	// Heavy type (Def 3.6).
	if st.atConsist {
		if m, ok := fa.heavyType(st); ok {
			r.Patterns = append(r.Patterns, m)
		}
	}

	// Structured values (Def 3.7): linear value↔address correlation.
	if st.n >= float64(fa.cfg.StructuredMinCount) {
		if m, ok := fa.structured(st); ok {
			r.Patterns = append(r.Patterns, m)
		}
	}

	// Approximate values (Def 3.8): the truncated histogram exposes a
	// single/frequent pattern the exact one does not.
	if st.sawFloat && !exactSingle && len(st.approx) > 0 {
		if m, ok := fa.approximate(st, total); ok {
			r.Patterns = append(r.Patterns, m)
		}
	}
	return r
}

func (fa *FineAccumulator) heavyType(st *objectState) (Match, bool) {
	declared := st.at
	switch {
	case st.sawInt && declared.Size >= 2:
		need := intWidth(st.minI, st.maxI)
		if need < declared.Size {
			return Match{Kind: HeavyType,
				Fraction: 1 - float64(need)/float64(declared.Size),
				Detail: fmt.Sprintf("int%d values fit in int%d (range [%d,%d])",
					8*declared.Size, 8*need, st.minI, st.maxI)}, true
		}
	case st.sawU && declared.Size >= 2:
		need := uintWidth(st.maxU)
		if need < declared.Size {
			return Match{Kind: HeavyType,
				Fraction: 1 - float64(need)/float64(declared.Size),
				Detail: fmt.Sprintf("uint%d values fit in uint%d (max %d)",
					8*declared.Size, 8*need, st.maxU)}, true
		}
	case st.sawFloat && declared.Size == 8 && st.allF64AsF32:
		return Match{Kind: HeavyType, Fraction: 0.5,
			Detail: "float64 values are exactly representable as float32"}, true
	case st.sawFloat && len(st.exact) >= 2 && len(st.exact) <= 256 && st.overflow == 0 &&
		st.loads+st.stores >= 4*uint64(len(st.exact)):
		// A tiny dictionary of float values (e.g. lavaMD's rA drawn from
		// {0.1..1.0}) can travel as uint8 indices (paper §8.6).
		return Match{Kind: HeavyType,
			Fraction: 1 - float64(1)/float64(declared.Size),
			Detail: fmt.Sprintf("float%d values drawn from %d distinct values; index with uint8",
				8*declared.Size, len(st.exact))}, true
	}
	return Match{}, false
}

func intWidth(lo, hi int64) uint8 {
	for _, w := range []uint8{1, 2, 4} {
		min := -(int64(1) << (8*w - 1))
		max := int64(1)<<(8*w-1) - 1
		if lo >= min && hi <= max {
			return w
		}
	}
	return 8
}

func uintWidth(hi uint64) uint8 {
	switch {
	case hi <= math.MaxUint8:
		return 1
	case hi <= math.MaxUint16:
		return 2
	case hi <= math.MaxUint32:
		return 4
	}
	return 8
}

func (fa *FineAccumulator) structured(st *objectState) (Match, bool) {
	n := st.n
	den := n*st.sumXX - st.sumX*st.sumX
	if den == 0 {
		return Match{}, false
	}
	varY := n*st.sumYY - st.sumY*st.sumY
	if varY <= 0 {
		// Constant values: that's single value, not structured.
		return Match{}, false
	}
	slope := (n*st.sumXY - st.sumX*st.sumY) / den
	// Intercept at the first accessed element (index 0 of the fit),
	// which for whole-array sweeps is the object's first element.
	intercept := (st.sumY - slope*st.sumX) / n
	r := (n*st.sumXY - st.sumX*st.sumY) / math.Sqrt(den*varY)
	r2 := r * r
	if math.IsNaN(r2) || r2 < fa.cfg.StructuredMinR2 || slope == 0 {
		return Match{}, false
	}
	return Match{Kind: StructuredValues, Fraction: r2,
		Detail: fmt.Sprintf("value ≈ %.6g·index %+.6g (r²=%.4f, index from first accessed element)",
			slope, intercept, r2)}, true
}

func (fa *FineAccumulator) approximate(st *objectState, total uint64) (Match, bool) {
	// Find the dominant truncated value.
	var best Value
	var bestCnt uint64
	for v, c := range st.approx {
		if c > bestCnt {
			best, bestCnt = v, c
		}
	}
	frac := float64(bestCnt) / float64(total)
	exactTop := uint64(0)
	for _, c := range st.exact {
		if c > exactTop {
			exactTop = c
		}
	}
	exactFrac := float64(exactTop) / float64(total)
	// The relaxation must *expose* something exact analysis missed.
	if frac < fa.cfg.FrequentThreshold || exactFrac >= fa.cfg.FrequentThreshold {
		return Match{}, false
	}
	kind := "frequent values"
	if len(st.approx) == 1 {
		kind = "single value"
	}
	return Match{Kind: ApproximateValues, Fraction: frac,
		Detail: fmt.Sprintf("with %d mantissa bits, %s pattern emerges around %s (%.1f%% of accesses)",
			fa.cfg.ApproxMantissaBits, kind, best.Format(), 100*frac)}, true
}
