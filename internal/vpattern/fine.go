package vpattern

import (
	"math"
	"sort"

	"valueexpert/gpu"
)

func ellipsis(yes bool) string {
	if yes {
		return ", …"
	}
	return ""
}

// FineConfig tunes fine-grained pattern recognition.
type FineConfig struct {
	// FrequentThreshold 𝒯 is the access share a value must exceed to be
	// "frequent" (Def 3.3). Default 0.5.
	FrequentThreshold float64
	// ApproxMantissaBits 𝒦 is the mantissa precision kept when relaxing
	// float values for approximate-pattern analysis (Def 3.8). Default 10
	// (≈3 decimal digits, within the paper's 2% RMSE budget).
	ApproxMantissaBits int
	// MaxTrackedValues caps the exact-value histogram; beyond it, new
	// distinct values are folded into an overflow count and single/
	// frequent detection degrades conservatively (no false positives).
	// Default 1<<16.
	MaxTrackedValues int
	// StructuredMinR2 is the minimum coefficient of determination for the
	// structured-values linear fit (Def 3.7). Default 0.99.
	StructuredMinR2 float64
	// StructuredMinCount is the minimum number of accesses before a
	// structured fit is attempted. Default 16.
	StructuredMinCount int
}

func (c FineConfig) withDefaults() FineConfig {
	if c.FrequentThreshold == 0 {
		c.FrequentThreshold = 0.5
	}
	if c.ApproxMantissaBits == 0 {
		c.ApproxMantissaBits = 10
	}
	if c.MaxTrackedValues == 0 {
		c.MaxTrackedValues = 1 << 16
	}
	if c.StructuredMinR2 == 0 {
		c.StructuredMinR2 = 0.99
	}
	if c.StructuredMinCount == 0 {
		c.StructuredMinCount = 16
	}
	return c
}

// valueHist is an insertion-ordered value histogram. Ordering by first
// occurrence makes saturation behaviour and dominant-value selection
// deterministic, and lets two partial histograms merge into exactly the
// state one sequential pass over the concatenated streams would produce:
// replaying a partial's entries in insertion order against the saturation
// cap visits distinct values in global first-occurrence order.
type valueHist struct {
	idx     map[Value]int
	entries []ValueCount
}

func newValueHist() *valueHist { return &valueHist{idx: make(map[Value]int)} }

// add counts n occurrences of v, admitting at most maxTracked distinct
// values. It reports whether v is tracked; untracked occurrences are the
// caller's to account (overflow or silent drop).
func (h *valueHist) add(v Value, n uint64, maxTracked int) bool {
	if i, ok := h.idx[v]; ok {
		h.entries[i].Count += n
		return true
	}
	if len(h.entries) >= maxTracked {
		return false
	}
	h.idx[v] = len(h.entries)
	h.entries = append(h.entries, ValueCount{Value: v, Count: n})
	return true
}

// trim re-applies a saturation cap to an insertion-ordered histogram,
// returning the total count of evicted occurrences. Equivalent to
// replaying the entries through add with the given cap.
func (h *valueHist) trim(maxTracked int) uint64 {
	if len(h.entries) <= maxTracked {
		return 0
	}
	var evicted uint64
	for _, e := range h.entries[maxTracked:] {
		evicted += e.Count
		delete(h.idx, e.Value)
	}
	h.entries = h.entries[:maxTracked]
	return evicted
}

func (h *valueHist) len() int { return len(h.entries) }

// ObjectShared is one data object's shared observation context: the
// access counters and exact-value histogram the accumulator maintains
// once per access, read by every detector at Finalize. Keeping the
// histogram here — rather than per detector — is what lets six detectors
// coexist at the cost the old monolith paid for one.
type ObjectShared struct {
	// Loads and Stores count accesses by direction.
	Loads, Stores uint64
	// Bytes is the total bytes accessed.
	Bytes uint64
	// Overflow counts accesses whose value fell outside the tracked set.
	Overflow uint64

	exact *valueHist
	top   []ValueCount
}

// Accesses returns the total access count.
func (sh *ObjectShared) Accesses() uint64 { return sh.Loads + sh.Stores }

// Distinct returns the number of distinct exact values tracked (capped).
func (sh *ObjectShared) Distinct() int { return sh.exact.len() }

// Saturated reports whether the histogram cap was reached, making
// distinct/top counts lower bounds.
func (sh *ObjectShared) Saturated() bool { return sh.Overflow > 0 }

// Values returns the exact histogram in first-occurrence order. The
// slice is shared; callers must not mutate it.
func (sh *ObjectShared) Values() []ValueCount { return sh.exact.entries }

// Top returns the ranked most-frequent values (descending count, capped
// at 8), valid during Finalize. The slice is shared; callers must not
// mutate it.
func (sh *ObjectShared) Top() []ValueCount { return sh.top }

// Single returns the object's only value when exactly one distinct value
// was observed and the histogram never saturated.
func (sh *ObjectShared) Single() (Value, bool) {
	if sh.exact.len() == 1 && sh.Overflow == 0 {
		return sh.exact.entries[0].Value, true
	}
	return Value{}, false
}

// rank computes the top values: by count descending, with a total order
// on ties so the ranking is reproducible across runs and worker
// configurations.
func (sh *ObjectShared) rank() {
	top := append([]ValueCount(nil), sh.exact.entries...)
	sort.Slice(top, func(i, j int) bool {
		a, b := top[i], top[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Value.Raw != b.Value.Raw {
			return a.Value.Raw < b.Value.Raw
		}
		if a.Value.Size != b.Value.Size {
			return a.Value.Size < b.Value.Size
		}
		return a.Value.Kind < b.Value.Kind
	})
	if len(top) > 8 {
		top = top[:8]
	}
	sh.top = top
}

// FineReport is the fine-grained pattern result for one data object at one
// GPU API.
type FineReport struct {
	ObjectID       int
	Accesses       uint64
	Loads, Stores  uint64
	Bytes          uint64
	DistinctValues int  // exact distinct values observed (capped)
	Saturated      bool // histogram cap reached; counts are lower bounds

	// TopValues are the most frequent values, descending by count.
	TopValues []ValueCount

	Patterns []Match
}

// ValueCount pairs a value with its access count.
type ValueCount struct {
	Value Value
	Count uint64
}

// HasPattern reports whether the report contains a pattern of kind k.
func (r *FineReport) HasPattern(k Kind) bool {
	for _, m := range r.Patterns {
		if m.Kind == k {
			return true
		}
	}
	return false
}

// Pattern returns the match of kind k, if present.
func (r *FineReport) Pattern(k Kind) (Match, bool) {
	for _, m := range r.Patterns {
		if m.Kind == k {
			return m, true
		}
	}
	return Match{}, false
}

// FineAccumulator ingests instrumented accesses grouped by data object and
// produces per-object fine-grained pattern reports for the current GPU
// API. It maintains the shared observation context (counters + exact
// histogram) and fans each access out to its detector lineup; matches are
// emitted in detector registration order. Reset between APIs (the online
// analyzer finalizes at each kernel exit).
type FineAccumulator struct {
	cfg  FineConfig
	regs []Registration
	dets []Detector
	objs map[int]*ObjectShared
}

// NewFineAccumulator creates an accumulator running every fine-grained
// detector enabled by default in the registry.
func NewFineAccumulator(cfg FineConfig) *FineAccumulator {
	return NewFineAccumulatorWith(cfg, FineDetectors(nil))
}

// NewFineAccumulatorWith creates an accumulator running exactly the given
// detector registrations. A detector left out costs nothing per access.
func NewFineAccumulatorWith(cfg FineConfig, regs []Registration) *FineAccumulator {
	fa := &FineAccumulator{cfg: cfg.withDefaults(), regs: regs, objs: make(map[int]*ObjectShared)}
	fa.dets = make([]Detector, len(regs))
	for i, r := range regs {
		fa.dets[i] = r.New(fa.cfg)
	}
	return fa
}

// NewShard creates an empty accumulator with the same detector lineup and
// an effectively unlimited histogram cap — the partial a pipeline worker
// fills over one flushed batch and hands back to Merge (which re-applies
// fa's cap, preserving global first-occurrence eviction order).
func (fa *FineAccumulator) NewShard() *FineAccumulator {
	cfg := fa.cfg
	cfg.MaxTrackedValues = math.MaxInt
	return NewFineAccumulatorWith(cfg, fa.regs)
}

// Add records one access belonging to the data object objID.
func (fa *FineAccumulator) Add(objID int, a gpu.Access) {
	sh := fa.objs[objID]
	if sh == nil {
		sh = &ObjectShared{exact: newValueHist()}
		fa.objs[objID] = sh
	}
	if a.Store {
		sh.Stores++
	} else {
		sh.Loads++
	}
	sh.Bytes += uint64(a.Size)

	// Exact histogram (capped).
	v := Value{Raw: a.Raw, Size: a.Size, Kind: a.Kind}
	if !sh.exact.add(v, 1, fa.cfg.MaxTrackedValues) {
		sh.Overflow++
	}

	for _, d := range fa.dets {
		d.Observe(objID, a)
	}
}

// Merge folds a partial accumulator into fa, producing exactly the state a
// single accumulator would hold after ingesting fa's access stream followed
// by other's. Pipelined analysis builds one uncapped partial per flushed
// batch on worker goroutines (NewShard) and merges them here in batch
// order, so the merged state — and hence the finalized report — is
// independent of worker count and scheduling. Merge requires other to run
// the same detector lineup and takes ownership of its state; other must
// not be used afterwards.
func (fa *FineAccumulator) Merge(other *FineAccumulator) {
	for id, ob := range other.objs {
		sh := fa.objs[id]
		if sh == nil {
			// Adopt wholesale, then re-apply fa's saturation cap: trimming
			// an insertion-ordered histogram equals replaying it capped.
			ob.Overflow += ob.exact.trim(fa.cfg.MaxTrackedValues)
			fa.objs[id] = ob
			continue
		}

		sh.Loads += ob.Loads
		sh.Stores += ob.Stores
		sh.Bytes += ob.Bytes

		// Replay the partial's histogram in insertion order against fa's
		// cap — identical saturation decisions to a sequential pass.
		for _, e := range ob.exact.entries {
			if !sh.exact.add(e.Value, e.Count, fa.cfg.MaxTrackedValues) {
				sh.Overflow += e.Count
			}
		}
		sh.Overflow += ob.Overflow
	}
	for i, d := range fa.dets {
		d.Merge(other.dets[i])
	}
	other.objs = nil
	other.dets = nil
}

// Objects returns the IDs with accumulated accesses.
func (fa *FineAccumulator) Objects() []int {
	ids := make([]int, 0, len(fa.objs))
	for id := range fa.objs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Reset clears all accumulated state for the next GPU API.
func (fa *FineAccumulator) Reset() {
	fa.objs = make(map[int]*ObjectShared)
	for i, r := range fa.regs {
		fa.dets[i] = r.New(fa.cfg)
	}
}

// Finalize computes fine-grained pattern reports for every accumulated
// object, ordered by object ID.
func (fa *FineAccumulator) Finalize() []FineReport {
	var out []FineReport
	for _, id := range fa.Objects() {
		out = append(out, fa.finalizeObject(id, fa.objs[id]))
	}
	return out
}

func (fa *FineAccumulator) finalizeObject(id int, sh *ObjectShared) FineReport {
	total := sh.Accesses()
	r := FineReport{
		ObjectID: id, Accesses: total, Loads: sh.Loads, Stores: sh.Stores,
		Bytes: sh.Bytes, DistinctValues: sh.Distinct(), Saturated: sh.Saturated(),
	}
	if total == 0 {
		return r
	}
	sh.rank()
	r.TopValues = sh.top
	for _, d := range fa.dets {
		if m, ok := d.Finalize(id, sh); ok {
			r.Patterns = append(r.Patterns, m)
		}
	}
	return r
}
