package vpattern

import (
	"math"
	"reflect"
	"testing"

	"valueexpert/gpu"
)

func addN(fa *FineAccumulator, obj int, n int, mk func(i int) gpu.Access) {
	for i := 0; i < n; i++ {
		fa.Add(obj, mk(i))
	}
}

func f32Access(addr uint64, v float32, store bool) gpu.Access {
	return gpu.Access{Addr: addr, Size: 4, Kind: gpu.KindFloat, Store: store, Raw: gpu.RawFromFloat32(v)}
}

func TestSingleZeroAndSingleValue(t *testing.T) {
	fa := NewFineAccumulator(FineConfig{})
	addN(fa, 1, 100, func(i int) gpu.Access { return f32Access(uint64(4*i), 0, true) })
	addN(fa, 2, 100, func(i int) gpu.Access { return f32Access(uint64(4*i), 7.5, false) })
	reps := fa.Finalize()
	if len(reps) != 2 {
		t.Fatalf("reports = %d", len(reps))
	}
	zero, val := reps[0], reps[1]
	if !zero.HasPattern(SingleZero) || !zero.HasPattern(SingleValue) {
		t.Fatalf("object 1 patterns = %v, want single zero + single value", zero.Patterns)
	}
	if !val.HasPattern(SingleValue) || val.HasPattern(SingleZero) {
		t.Fatalf("object 2 patterns = %v, want single value only", val.Patterns)
	}
	if zero.Loads != 0 || zero.Stores != 100 || val.Loads != 100 {
		t.Fatal("load/store counts wrong")
	}
	if m, _ := val.Pattern(SingleValue); m.Fraction != 1 {
		t.Fatalf("single value fraction = %v", m.Fraction)
	}
}

func TestNegativeZeroIsZero(t *testing.T) {
	fa := NewFineAccumulator(FineConfig{})
	addN(fa, 1, 10, func(i int) gpu.Access { return f32Access(uint64(4*i), float32(math.Copysign(0, -1)), true) })
	rep := fa.Finalize()[0]
	if !rep.HasPattern(SingleZero) {
		t.Fatalf("-0.0 not recognized as zero: %v", rep.Patterns)
	}
}

func TestFrequentValues(t *testing.T) {
	fa := NewFineAccumulator(FineConfig{FrequentThreshold: 0.6})
	// 70% zeros, 30% varied: frequent but not single.
	addN(fa, 1, 100, func(i int) gpu.Access {
		if i < 70 {
			return f32Access(uint64(4*i), 0, true)
		}
		return f32Access(uint64(4*i), float32(i), true)
	})
	rep := fa.Finalize()[0]
	if rep.HasPattern(SingleValue) || rep.HasPattern(SingleZero) {
		t.Fatalf("should not be single: %v", rep.Patterns)
	}
	m, ok := rep.Pattern(FrequentValues)
	if !ok || m.Fraction < 0.69 || m.Fraction > 0.71 {
		t.Fatalf("frequent = %+v, %v", m, ok)
	}
	if rep.TopValues[0].Count != 70 {
		t.Fatalf("top value count = %d", rep.TopValues[0].Count)
	}
	// Below threshold: no pattern.
	fa2 := NewFineAccumulator(FineConfig{FrequentThreshold: 0.8})
	addN(fa2, 1, 100, func(i int) gpu.Access {
		if i < 70 {
			return f32Access(uint64(4*i), 0, true)
		}
		return f32Access(uint64(4*i), float32(i), true)
	})
	if rep := fa2.Finalize()[0]; rep.HasPattern(FrequentValues) {
		t.Fatal("frequent reported below threshold")
	}
}

func TestHeavyTypeInt(t *testing.T) {
	// int32 values in [0,100] — the Rodinia/bfs g_cost case: demote to int8.
	fa := NewFineAccumulator(FineConfig{})
	addN(fa, 1, 50, func(i int) gpu.Access {
		return gpu.Access{Addr: uint64(4 * i), Size: 4, Kind: gpu.KindInt, Raw: uint64(uint32(i % 100))}
	})
	rep := fa.Finalize()[0]
	m, ok := rep.Pattern(HeavyType)
	if !ok {
		t.Fatalf("no heavy type: %v", rep.Patterns)
	}
	if m.Detail == "" || m.Fraction <= 0 {
		t.Fatalf("heavy type match = %+v", m)
	}
	// Negative values that still fit int8.
	fa2 := NewFineAccumulator(FineConfig{})
	addN(fa2, 1, 50, func(i int) gpu.Access {
		return gpu.Access{Addr: uint64(4 * i), Size: 4, Kind: gpu.KindInt, Raw: uint64(uint32(int32(-i)))}
	})
	if rep := fa2.Finalize()[0]; !rep.HasPattern(HeavyType) {
		t.Fatal("negative small ints not flagged heavy")
	}
	// Full-range int32: no pattern.
	fa3 := NewFineAccumulator(FineConfig{})
	addN(fa3, 1, 50, func(i int) gpu.Access {
		return gpu.Access{Addr: uint64(4 * i), Size: 4, Kind: gpu.KindInt, Raw: uint64(uint32(int32(1 << 30 * (i%2*2 - 1))))}
	})
	if rep := fa3.Finalize()[0]; rep.HasPattern(HeavyType) {
		t.Fatal("full-range ints flagged heavy")
	}
}

func TestHeavyTypeUintAndF64(t *testing.T) {
	fa := NewFineAccumulator(FineConfig{})
	addN(fa, 1, 40, func(i int) gpu.Access {
		return gpu.Access{Addr: uint64(8 * i), Size: 8, Kind: gpu.KindUint, Raw: uint64(i % 200)}
	})
	if rep := fa.Finalize()[0]; !rep.HasPattern(HeavyType) {
		t.Fatal("small uint64 not flagged heavy")
	}
	// float64 values exactly representable as float32.
	fa2 := NewFineAccumulator(FineConfig{})
	addN(fa2, 1, 40, func(i int) gpu.Access {
		return gpu.Access{Addr: uint64(8 * i), Size: 8, Kind: gpu.KindFloat, Raw: gpu.RawFromFloat64(float64(float32(i) * 0.5))}
	})
	if rep := fa2.Finalize()[0]; !rep.HasPattern(HeavyType) {
		t.Fatal("f32-representable f64 not flagged heavy")
	}
	// float64 needing full precision: not heavy.
	fa3 := NewFineAccumulator(FineConfig{})
	addN(fa3, 1, 4000, func(i int) gpu.Access {
		return gpu.Access{Addr: uint64(8 * i), Size: 8, Kind: gpu.KindFloat, Raw: gpu.RawFromFloat64(1.0/3.0 + float64(i)*1e-13)}
	})
	if rep := fa3.Finalize()[0]; rep.HasPattern(HeavyType) {
		t.Fatal("full-precision f64 flagged heavy")
	}
}

func TestHeavyTypeFloatDictionary(t *testing.T) {
	// lavaMD's rA: doubles drawn from ten values {0.1..1.0} (paper §8.6).
	fa := NewFineAccumulator(FineConfig{})
	vals := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	addN(fa, 1, 500, func(i int) gpu.Access {
		return gpu.Access{Addr: uint64(8 * i), Size: 8, Kind: gpu.KindFloat, Raw: gpu.RawFromFloat64(vals[i%10])}
	})
	rep := fa.Finalize()[0]
	m, ok := rep.Pattern(HeavyType)
	if !ok {
		t.Fatalf("dictionary floats not flagged heavy: %v", rep.Patterns)
	}
	if m.Detail == "" {
		t.Fatal("missing suggestion detail")
	}
}

func TestStructuredValues(t *testing.T) {
	// srad_v1's d_iN-style arrays: value = linear function of index.
	fa := NewFineAccumulator(FineConfig{})
	base := uint64(0x1000)
	addN(fa, 1, 200, func(i int) gpu.Access {
		return gpu.Access{Addr: base + uint64(4*i), Size: 4, Kind: gpu.KindInt, Raw: uint64(uint32(int32(i - 1)))}
	})
	rep := fa.Finalize()[0]
	m, ok := rep.Pattern(StructuredValues)
	if !ok {
		t.Fatalf("no structured pattern: %v", rep.Patterns)
	}
	if m.Fraction < 0.99 {
		t.Fatalf("r² = %v", m.Fraction)
	}
	// Random values: no pattern.
	fa2 := NewFineAccumulator(FineConfig{})
	addN(fa2, 1, 200, func(i int) gpu.Access {
		return gpu.Access{Addr: base + uint64(4*i), Size: 4, Kind: gpu.KindInt, Raw: uint64(uint32((i*2654435761 + 17) % 1000))}
	})
	if rep := fa2.Finalize()[0]; rep.HasPattern(StructuredValues) {
		t.Fatal("random values reported structured")
	}
	// Constant values: single value, not structured.
	fa3 := NewFineAccumulator(FineConfig{})
	addN(fa3, 1, 200, func(i int) gpu.Access {
		return gpu.Access{Addr: base + uint64(4*i), Size: 4, Kind: gpu.KindInt, Raw: 5}
	})
	rep3 := fa3.Finalize()[0]
	if rep3.HasPattern(StructuredValues) || !rep3.HasPattern(SingleValue) {
		t.Fatalf("constant: %v", rep3.Patterns)
	}
	// Too few accesses: fit not attempted.
	fa4 := NewFineAccumulator(FineConfig{StructuredMinCount: 64})
	addN(fa4, 1, 20, func(i int) gpu.Access {
		return gpu.Access{Addr: base + uint64(4*i), Size: 4, Kind: gpu.KindInt, Raw: uint64(uint32(i))}
	})
	if rep := fa4.Finalize()[0]; rep.HasPattern(StructuredValues) {
		t.Fatal("structured fit attempted below min count")
	}
}

// Regression: device addresses are ~2^46, large enough that naive x²
// sums catastrophically cancel. The fit must stay numerically stable —
// no NaN matches — and still detect linearity at realistic addresses.
func TestStructuredValuesHighAddresses(t *testing.T) {
	const base = uint64(0x7f00_0000_0000)
	fa := NewFineAccumulator(FineConfig{})
	addN(fa, 1, 500, func(i int) gpu.Access {
		return gpu.Access{Addr: base + uint64(4*i), Size: 4, Kind: gpu.KindInt, Raw: uint64(uint32(2*i + 7))}
	})
	rep := fa.Finalize()[0]
	m, ok := rep.Pattern(StructuredValues)
	if !ok {
		t.Fatalf("linear values at high addresses not detected: %v", rep.Patterns)
	}
	if math.IsNaN(m.Fraction) || m.Fraction < 0.99 {
		t.Fatalf("fit unstable: %+v", m)
	}
	// A periodic sawtooth at high addresses: must not yield NaN or a
	// phantom match.
	fa2 := NewFineAccumulator(FineConfig{})
	addN(fa2, 1, 5000, func(i int) gpu.Access {
		return f32Access(base+uint64(4*i), float32(i%97)*0.25, false)
	})
	rep2 := fa2.Finalize()[0]
	for _, p := range rep2.Patterns {
		if math.IsNaN(p.Fraction) {
			t.Fatalf("NaN pattern fraction: %+v", p)
		}
	}
	if rep2.HasPattern(StructuredValues) {
		t.Fatalf("sawtooth reported structured: %v", rep2.Patterns)
	}
}

func TestApproximateValues(t *testing.T) {
	// hotspot-style: values all within a tiny epsilon of 80.0 — exact
	// analysis sees thousands of distinct values, truncated analysis one.
	fa := NewFineAccumulator(FineConfig{ApproxMantissaBits: 8})
	addN(fa, 1, 1000, func(i int) gpu.Access {
		return f32Access(uint64(4*i), 80+float32(i)*1e-5, false)
	})
	rep := fa.Finalize()[0]
	if rep.HasPattern(SingleValue) {
		t.Fatal("exact single value should not hold")
	}
	m, ok := rep.Pattern(ApproximateValues)
	if !ok {
		t.Fatalf("no approximate pattern: %v", rep.Patterns)
	}
	if m.Fraction < 0.99 {
		t.Fatalf("approximate fraction = %v", m.Fraction)
	}
	// Truly varied floats: no approximate pattern.
	fa2 := NewFineAccumulator(FineConfig{ApproxMantissaBits: 8})
	addN(fa2, 1, 1000, func(i int) gpu.Access {
		return f32Access(uint64(4*i), float32(i), false)
	})
	if rep := fa2.Finalize()[0]; rep.HasPattern(ApproximateValues) {
		t.Fatal("varied floats reported approximate")
	}
	// Exact-frequent objects don't need the relaxation.
	fa3 := NewFineAccumulator(FineConfig{ApproxMantissaBits: 8})
	addN(fa3, 1, 1000, func(i int) gpu.Access { return f32Access(uint64(4*i), 80, false) })
	if rep := fa3.Finalize()[0]; rep.HasPattern(ApproximateValues) {
		t.Fatal("exact single value also reported approximate")
	}
}

func TestHistogramSaturation(t *testing.T) {
	fa := NewFineAccumulator(FineConfig{MaxTrackedValues: 16})
	addN(fa, 1, 100, func(i int) gpu.Access {
		return gpu.Access{Addr: uint64(4 * i), Size: 4, Kind: gpu.KindUint, Raw: uint64(i)}
	})
	rep := fa.Finalize()[0]
	if !rep.Saturated || rep.DistinctValues != 16 {
		t.Fatalf("saturation: %+v", rep)
	}
	// Saturated histograms must not fabricate single-value patterns.
	if rep.HasPattern(SingleValue) {
		t.Fatal("false single value under saturation")
	}
}

func TestMixedAccessTypesDisableHeavyType(t *testing.T) {
	fa := NewFineAccumulator(FineConfig{})
	fa.Add(1, gpu.Access{Addr: 0, Size: 4, Kind: gpu.KindInt, Raw: 1})
	fa.Add(1, gpu.Access{Addr: 4, Size: 4, Kind: gpu.KindFloat, Raw: gpu.RawFromFloat32(1)})
	rep := fa.Finalize()[0]
	if rep.HasPattern(HeavyType) {
		t.Fatal("heavy type on inconsistent access types")
	}
}

func TestResetAndObjects(t *testing.T) {
	fa := NewFineAccumulator(FineConfig{})
	fa.Add(3, f32Access(0, 1, true))
	fa.Add(1, f32Access(0, 1, true))
	ids := fa.Objects()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("objects = %v", ids)
	}
	fa.Reset()
	if len(fa.Finalize()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestValueNumericAndFormat(t *testing.T) {
	cases := []struct {
		v    Value
		num  float64
		text string
	}{
		{Value{Raw: gpu.RawFromFloat32(2.5), Size: 4, Kind: gpu.KindFloat}, 2.5, "2.5"},
		{Value{Raw: gpu.RawFromFloat64(-3), Size: 8, Kind: gpu.KindFloat}, -3, "-3"},
		{Value{Raw: uint64(uint32(0xFFFFFFFB)), Size: 4, Kind: gpu.KindInt}, -5, "-5"},
		{Value{Raw: 0xFF, Size: 1, Kind: gpu.KindUint}, 255, "0xff"},
	}
	for _, c := range cases {
		if c.v.Numeric() != c.num {
			t.Fatalf("Numeric(%+v) = %v, want %v", c.v, c.v.Numeric(), c.num)
		}
		if c.v.Format() != c.text {
			t.Fatalf("Format(%+v) = %q, want %q", c.v, c.v.Format(), c.text)
		}
	}
}

func TestTruncate(t *testing.T) {
	v := Value{Raw: gpu.RawFromFloat64(1.0000001), Size: 8, Kind: gpu.KindFloat}
	tv := v.Truncate(10)
	if tv.Raw == v.Raw {
		t.Fatal("truncation did nothing")
	}
	one := Value{Raw: gpu.RawFromFloat64(1.0), Size: 8, Kind: gpu.KindFloat}
	if tv.Raw != one.Truncate(10).Raw {
		t.Fatal("nearby values do not collapse after truncation")
	}
	// Non-floats unchanged.
	iv := Value{Raw: 12345, Size: 4, Kind: gpu.KindInt}
	if iv.Truncate(4) != iv {
		t.Fatal("int truncated")
	}
	// keepBits >= mantissa width: unchanged.
	if v.Truncate(60) != v {
		t.Fatal("over-wide truncation changed value")
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
	m := Match{Kind: SingleZero, Fraction: 1}
	if m.String() == "" {
		t.Fatal("match render")
	}
	m.Detail = "x"
	if m.String() == "" {
		t.Fatal("match render with detail")
	}
}

// mergeStream replays accs through batches of the given size, compacting
// each batch into an uncapped shard (as pipeline workers do) and merging
// the shards in order into a master with the configured cap.
func mergeStream(cfg FineConfig, accs []gpu.Access, objOf func(i int) int, batch int) []FineReport {
	master := NewFineAccumulator(cfg)
	shardCfg := cfg
	shardCfg.MaxTrackedValues = math.MaxInt
	for lo := 0; lo < len(accs); lo += batch {
		hi := lo + batch
		if hi > len(accs) {
			hi = len(accs)
		}
		shard := NewFineAccumulator(shardCfg)
		for i := lo; i < hi; i++ {
			shard.Add(objOf(i), accs[i])
		}
		master.Merge(shard)
	}
	return master.Finalize()
}

// TestMergeMatchesSequential: batching a stream through uncapped shards
// and in-order merges must finalize identically to sequential Adds —
// the property the analysis pipeline's determinism rests on.
func TestMergeMatchesSequential(t *testing.T) {
	mk := func(i int) gpu.Access {
		switch i % 4 {
		case 0:
			return f32Access(uint64(4*(i%64)), 0, true)
		case 1:
			return f32Access(uint64(4*(i%64)), float32(i%9)+0.5, false)
		case 2:
			return gpu.Access{Addr: uint64(8 * (i % 32)), Size: 8, Kind: gpu.KindInt,
				Store: true, Raw: uint64(i % 6)}
		default:
			return f32Access(uint64(4*(i%64)), float32(i)*0.001, false)
		}
	}
	objOf := func(i int) int { return 1 + i%3 }
	const n = 600
	accs := make([]gpu.Access, n)
	for i := range accs {
		accs[i] = mk(i)
	}

	seq := NewFineAccumulator(FineConfig{})
	for i, a := range accs {
		seq.Add(objOf(i), a)
	}
	want := seq.Finalize()

	for _, batch := range []int{1, 7, 64, n} {
		got := mergeStream(FineConfig{}, accs, objOf, batch)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("batch=%d: merged reports differ from sequential\nwant %+v\ngot  %+v", batch, want, got)
		}
	}
}

// TestMergeSaturationOrdering: with a tiny MaxTrackedValues the master must
// reproduce global first-occurrence eviction — values that saturated the
// sequential histogram stay evicted even if a later shard saw them first.
func TestMergeSaturationOrdering(t *testing.T) {
	cfg := FineConfig{MaxTrackedValues: 2}
	// Values: A A B C C A — cap 2 tracks {A, B}; C overflows; the final A
	// accesses must still count toward A, not overflow.
	vals := []float32{1, 1, 2, 3, 3, 1}
	accs := make([]gpu.Access, len(vals))
	for i, v := range vals {
		accs[i] = f32Access(uint64(4*i), v, true)
	}
	objOf := func(int) int { return 1 }

	seq := NewFineAccumulator(cfg)
	for i, a := range accs {
		seq.Add(objOf(i), a)
	}
	want := seq.Finalize()
	if want[0].DistinctValues != 2 {
		t.Fatalf("sequential distinct = %d, want 2 (saturated)", want[0].DistinctValues)
	}

	// Batch boundary after "A A B": the second shard sees C before A.
	for _, batch := range []int{1, 2, 3, 4} {
		got := mergeStream(cfg, accs, objOf, batch)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("batch=%d: saturation diverged\nwant %+v\ngot  %+v", batch, want, got)
		}
	}
}
