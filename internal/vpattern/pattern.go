// Package vpattern recognizes the eight value patterns of paper §3 in the
// access streams and value snapshots ValueExpert collects:
//
// Coarse-grained (per GPU API, from snapshots): redundant values,
// duplicate values.
//
// Fine-grained (per data object at a GPU API, from instrumented
// accesses): frequent values, single value, single zero, heavy type,
// structured values, approximate values.
package vpattern

import (
	"fmt"

	"valueexpert/gpu"
)

// Kind enumerates the value patterns (Table 1 columns).
type Kind uint8

// The eight value patterns, in the paper's order.
const (
	RedundantValues Kind = iota
	DuplicateValues
	FrequentValues
	SingleValue
	SingleZero
	HeavyType
	StructuredValues
	ApproximateValues

	NumKinds = 8
)

var kindNames = [...]string{
	"redundant values", "duplicate values", "frequent values", "single value",
	"single zero", "heavy type", "structured values", "approximate values",
}

// String returns the registered pattern name (for the builtins, the
// paper's name).
func (k Kind) String() string {
	if r, ok := Lookup(k); ok {
		return r.Name
	}
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("pattern(%d)", uint8(k))
}

// Match is one detected pattern instance on a data object at a GPU API.
type Match struct {
	Kind Kind
	// Fraction quantifies pattern strength in [0,1]: unchanged fraction
	// for redundancy, hot-value access share for frequent/single
	// patterns, r² for structured values.
	Fraction float64
	// Detail is a human-readable explanation used in reports, e.g. the
	// dominant value, the suggested narrow type, or the fitted line.
	Detail string
}

// String formats the match for reports.
func (m Match) String() string {
	if m.Detail == "" {
		return fmt.Sprintf("%s (%.1f%%)", m.Kind, 100*m.Fraction)
	}
	return fmt.Sprintf("%s (%.1f%%): %s", m.Kind, 100*m.Fraction, m.Detail)
}

// Value is a decoded access value: the raw bits plus the access type that
// interprets them.
type Value struct {
	Raw  uint64
	Size uint8
	Kind gpu.ValueKind
}

// Numeric converts the value to float64 for range and correlation
// analysis. Unknown-typed values are treated as unsigned integers, the
// same opaque-bits fallback the paper's analyzer uses.
func (v Value) Numeric() float64 {
	switch v.Kind {
	case gpu.KindFloat:
		if v.Size == 8 {
			return gpu.Float64FromRaw(v.Raw)
		}
		return float64(gpu.Float32FromRaw(v.Raw))
	case gpu.KindInt:
		return float64(signExtend(v.Raw, v.Size))
	default:
		return float64(v.Raw)
	}
}

// IsZero reports whether the value is numerically zero (including IEEE
// negative zero for floats).
func (v Value) IsZero() bool {
	if v.Raw == 0 {
		return true
	}
	if v.Kind == gpu.KindFloat {
		switch v.Size {
		case 4:
			return gpu.Float32FromRaw(v.Raw) == 0
		case 8:
			return gpu.Float64FromRaw(v.Raw) == 0
		}
	}
	return false
}

// Format renders the value per its type.
func (v Value) Format() string {
	switch v.Kind {
	case gpu.KindFloat:
		if v.Size == 8 {
			return fmt.Sprintf("%g", gpu.Float64FromRaw(v.Raw))
		}
		return fmt.Sprintf("%g", gpu.Float32FromRaw(v.Raw))
	case gpu.KindInt:
		return fmt.Sprintf("%d", signExtend(v.Raw, v.Size))
	default:
		return fmt.Sprintf("%#x", v.Raw)
	}
}

func signExtend(raw uint64, size uint8) int64 {
	shift := uint(64 - 8*size)
	return int64(raw<<shift) >> shift
}

// Truncate returns the value with its float mantissa truncated to keep
// bits — the relaxation that powers approximate-value analysis (Def 3.8).
// Non-float values are returned unchanged.
func (v Value) Truncate(keepBits int) Value {
	if v.Kind != gpu.KindFloat {
		return v
	}
	switch v.Size {
	case 4:
		drop := 23 - keepBits
		if drop <= 0 {
			return v
		}
		mask := ^uint64(1<<uint(drop) - 1)
		return Value{Raw: v.Raw & mask & 0xffff_ffff, Size: v.Size, Kind: v.Kind}
	case 8:
		drop := 52 - keepBits
		if drop <= 0 {
			return v
		}
		mask := ^uint64(1<<uint(drop) - 1)
		return Value{Raw: v.Raw & mask, Size: v.Size, Kind: v.Kind}
	}
	return v
}
