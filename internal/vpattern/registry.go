package vpattern

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"valueexpert/gpu"
)

// Grain classifies a pattern by its observation mechanism (paper §3):
// coarse-grained patterns are recognized from per-API value snapshots,
// fine-grained patterns from instrumented per-access values.
type Grain uint8

const (
	// GrainCoarse patterns are detected by diffing/hashing data-object
	// value snapshots at GPU API boundaries.
	GrainCoarse Grain = iota
	// GrainFine patterns are detected from the instrumented access stream
	// by a Detector.
	GrainFine
)

// String names the grain.
func (g Grain) String() string {
	if g == GrainCoarse {
		return "coarse"
	}
	return "fine"
}

// Detector recognizes one fine-grained value pattern over the
// instrumented access stream of one kernel launch. Implementations hold
// only their own per-object state; the access counters and exact-value
// histogram every pattern needs live in the shared observation context
// the accumulator maintains (ObjectShared).
//
// A detector participates in the analysis pipeline's compact/absorb path:
// workers build an independent partial detector per flushed batch (via
// the same factory) and the collector folds the partials into the launch
// detector with Merge, in flush order — so a detector's merged state must
// equal the state one sequential pass over the concatenated batches would
// produce.
type Detector interface {
	// Observe ingests one access of data object objID. The accumulator
	// has already folded the access into the object's shared observation.
	Observe(objID int, a gpu.Access)

	// Merge folds a partial detector of the same concrete type — built
	// over one flushed batch on a pipeline worker — into this one, in
	// batch order. Merge reads the partial's state without consuming it;
	// the engine resets (Resetter) or discards the partial afterwards.
	Merge(partial Detector)

	// Finalize reports objID's match, if the pattern holds. sh is the
	// object's shared observation context, with the ranked top values
	// already computed.
	Finalize(objID int, sh *ObjectShared) (Match, bool)
}

// FineAdvice maps one fine-grained match on a data object to the
// optimization suggestion it implies: the advisor calls the registered
// kind's advice with the match and the object's accessed bytes and emits
// a ranked suggestion titled title with estimated benefit. ok=false
// emits nothing.
type FineAdvice func(m Match, objectBytes uint64) (title string, benefit uint64, ok bool)

// KindAuto asks Register to allocate the next free Kind — the way
// out-of-tree patterns obtain a kind without coordinating constants.
const KindAuto Kind = 0xFF

// Registration describes one value-pattern kind: identity, grain, and
// the hooks each layer consults — the detector factory for the fine
// analysis stage and the advice function for the advisor. Registering a
// kind is all it takes for the engine, report, advisor, GUI tables, and
// vxprof -patterns to carry it.
type Registration struct {
	// Kind identifies the pattern; KindAuto allocates the next free kind.
	Kind Kind
	// Name is the pattern's report/flag name (e.g. "heavy type").
	Name string
	// Grain tells which engine stage owns detection.
	Grain Grain
	// Default enables the pattern when Config.Patterns is unset.
	Default bool
	// New builds the launch detector (fine kinds). nil for coarse kinds,
	// whose snapshot machinery lives in the engine's coarse stage.
	New func(cfg FineConfig) Detector
	// ExactMerge declares the detector's Merge exactly associative:
	// folding partials A then B into an empty detector and merging the
	// result must equal merging A then B directly, bit for bit. Only
	// such detectors participate in shard pre-combining and intra-batch
	// chunked compaction; the rest (e.g. structured values, whose merge
	// rebases floating-point sums) always observe whole batches
	// sequentially and merge strictly in flush order. Leave unset when
	// in doubt — it only costs the pre-combine shortcut.
	ExactMerge bool
	// Advise derives the advisor suggestion for one match (fine kinds);
	// nil emits no per-match suggestions.
	Advise FineAdvice
}

var registry = struct {
	sync.RWMutex
	order  []Kind
	byKind map[Kind]Registration
	byName map[string]Kind
	next   Kind
}{
	byKind: make(map[Kind]Registration),
	byName: make(map[string]Kind),
	next:   NumKinds,
}

// Register adds a pattern kind to the global registry and returns its
// Kind (allocated when r.Kind is KindAuto). Registration order is
// significant: fine-grained matches are emitted in registration order,
// which for the builtins reproduces the report layout byte for byte.
// Register panics on a duplicate kind or name — registrations are
// program wiring, not runtime input.
func Register(r Registration) Kind {
	registry.Lock()
	defer registry.Unlock()
	if r.Name == "" {
		panic("vpattern: registration without a name")
	}
	if r.Kind == KindAuto {
		r.Kind = registry.next
		registry.next++
	} else if r.Kind >= registry.next {
		registry.next = r.Kind + 1
	}
	if _, dup := registry.byKind[r.Kind]; dup {
		panic(fmt.Sprintf("vpattern: kind %d registered twice", r.Kind))
	}
	if _, dup := registry.byName[r.Name]; dup {
		panic(fmt.Sprintf("vpattern: pattern name %q registered twice", r.Name))
	}
	if r.Grain == GrainFine && r.New == nil {
		panic(fmt.Sprintf("vpattern: fine-grained pattern %q has no detector factory", r.Name))
	}
	registry.order = append(registry.order, r.Kind)
	registry.byKind[r.Kind] = r
	registry.byName[r.Name] = r.Kind
	return r.Kind
}

// Lookup returns kind k's registration.
func Lookup(k Kind) (Registration, bool) {
	registry.RLock()
	defer registry.RUnlock()
	r, ok := registry.byKind[k]
	return r, ok
}

// LookupName returns the registration with the given report name.
func LookupName(name string) (Registration, bool) {
	registry.RLock()
	defer registry.RUnlock()
	k, ok := registry.byName[name]
	if !ok {
		return Registration{}, false
	}
	return registry.byKind[k], true
}

// All returns every registration in registration order.
func All() []Registration {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Registration, 0, len(registry.order))
	for _, k := range registry.order {
		out = append(out, registry.byKind[k])
	}
	return out
}

// Names returns every registered pattern name in registration order.
func Names() []string {
	var out []string
	for _, r := range All() {
		out = append(out, r.Name)
	}
	return out
}

// DefaultNames returns the names of the patterns enabled by default, in
// registration order.
func DefaultNames() []string {
	var out []string
	for _, r := range All() {
		if r.Default {
			out = append(out, r.Name)
		}
	}
	return out
}

// Set is an enabled-pattern set. A nil Set means "registry defaults".
type Set map[Kind]bool

// Enabled reports whether kind k is on. On a nil Set, the registration's
// Default decides.
func (s Set) Enabled(k Kind) bool {
	if s == nil {
		r, ok := Lookup(k)
		return ok && r.Default
	}
	return s[k]
}

// Names returns the set's enabled pattern names in registration order.
func (s Set) Names() []string {
	var out []string
	for _, r := range All() {
		if s.Enabled(r.Kind) {
			out = append(out, r.Name)
		}
	}
	return out
}

// ParseSet resolves pattern names to an enabled set. nil selects the
// registry defaults (and returns a nil Set); an empty non-nil slice
// disables every pattern. Unknown names are rejected with an error that
// lists the valid set.
func ParseSet(names []string) (Set, error) {
	if names == nil {
		return nil, nil
	}
	set := make(Set, len(names))
	for _, n := range names {
		r, ok := LookupName(n)
		if !ok {
			valid := Names()
			sort.Strings(valid)
			return nil, fmt.Errorf("unknown pattern %q (valid: %s)", n, strings.Join(valid, ", "))
		}
		set[r.Kind] = true
	}
	return set, nil
}

// FineDetectors returns the fine-grained registrations enabled in set,
// in registration order — the detector lineup a FineAccumulator runs.
func FineDetectors(set Set) []Registration {
	var out []Registration
	for _, r := range All() {
		if r.Grain == GrainFine && set.Enabled(r.Kind) {
			out = append(out, r)
		}
	}
	return out
}
