package vpattern

import (
	"strings"
	"testing"

	"valueexpert/gpu"
)

func TestBuiltinRegistrationOrder(t *testing.T) {
	// Registration order is the report emission order — the byte-identity
	// contract of the refactor depends on it.
	want := []string{
		"redundant values", "duplicate values", "single zero",
		"single value", "frequent values", "heavy type",
		"structured values", "approximate values",
	}
	names := Names()
	if len(names) < len(want) {
		t.Fatalf("registry names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names[%d] = %q, want %q (full: %v)", i, names[i], n, names)
		}
	}
	// All eight builtins are on by default.
	defaults := map[string]bool{}
	for _, n := range DefaultNames() {
		defaults[n] = true
	}
	for _, n := range want {
		if !defaults[n] {
			t.Fatalf("builtin %q not enabled by default", n)
		}
	}
}

func TestBuiltinLookup(t *testing.T) {
	for _, c := range []struct {
		kind  Kind
		name  string
		grain Grain
	}{
		{RedundantValues, "redundant values", GrainCoarse},
		{DuplicateValues, "duplicate values", GrainCoarse},
		{SingleZero, "single zero", GrainFine},
		{ApproximateValues, "approximate values", GrainFine},
	} {
		reg, ok := Lookup(c.kind)
		if !ok || reg.Name != c.name || reg.Grain != c.grain {
			t.Fatalf("Lookup(%v) = %+v, %v", c.kind, reg, ok)
		}
		byName, ok := LookupName(c.name)
		if !ok || byName.Kind != c.kind {
			t.Fatalf("LookupName(%q) = %+v, %v", c.name, byName, ok)
		}
		if c.grain == GrainFine && (reg.New == nil || reg.Advise == nil) {
			t.Fatalf("fine builtin %q missing factory or advice", c.name)
		}
	}
}

func TestParseSetErrors(t *testing.T) {
	set, err := ParseSet(nil)
	if err != nil || set != nil {
		t.Fatalf("nil names: %v %v", set, err)
	}
	set, err = ParseSet([]string{"single zero", "heavy type"})
	if err != nil {
		t.Fatal(err)
	}
	if !set.Enabled(SingleZero) || !set.Enabled(HeavyType) || set.Enabled(SingleValue) {
		t.Fatalf("subset membership wrong: %v", set)
	}
	// An explicit empty (non-nil) selection disables everything.
	set, err = ParseSet([]string{})
	if err != nil || set == nil {
		t.Fatalf("empty names: %v %v", set, err)
	}
	for _, reg := range All() {
		if set.Enabled(reg.Kind) {
			t.Fatalf("empty set still enables %q", reg.Name)
		}
	}
	_, err = ParseSet([]string{"no such pattern"})
	if err == nil || !strings.Contains(err.Error(), `"no such pattern"`) ||
		!strings.Contains(err.Error(), "valid:") {
		t.Fatalf("unknown name error: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(what string, r Registration) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("Register accepted %s", what)
			}
		}()
		Register(r)
	}
	mustPanic("empty name", Registration{Kind: KindAuto, Grain: GrainFine,
		New: func(FineConfig) Detector { return noopDetector{} }})
	mustPanic("duplicate name", Registration{Kind: KindAuto, Name: "single zero",
		Grain: GrainFine, New: func(FineConfig) Detector { return noopDetector{} }})
	mustPanic("duplicate kind", Registration{Kind: SingleZero, Name: "test dup kind",
		Grain: GrainFine, New: func(FineConfig) Detector { return noopDetector{} }})
	mustPanic("fine kind without factory", Registration{Kind: KindAuto,
		Name: "test no factory", Grain: GrainFine})
}

// countingDetector records Observe calls so tests can prove that a
// disabled detector costs nothing on the per-access path.
type countingDetector struct {
	observes *int
}

func (d countingDetector) Observe(objID int, a gpu.Access) { *d.observes++ }
func (d countingDetector) Merge(partial Detector) {
	*d.observes += *partial.(countingDetector).observes
}
func (d countingDetector) Finalize(objID int, sh *ObjectShared) (Match, bool) {
	return Match{}, false
}

func TestRegisterAutoKindAndDisabledByDefault(t *testing.T) {
	calls := 0
	kind := Register(Registration{
		Kind:    KindAuto,
		Name:    "test counting",
		Grain:   GrainFine,
		Default: false,
		New:     func(FineConfig) Detector { return countingDetector{observes: &calls} },
	})
	if kind < NumKinds {
		t.Fatalf("auto-allocated kind %d collides with builtins", kind)
	}
	if kind.String() != "test counting" {
		t.Fatalf("Kind.String() for registered kind = %q", kind.String())
	}
	for _, n := range DefaultNames() {
		if n == "test counting" {
			t.Fatal("Default:false kind appears in DefaultNames")
		}
	}

	// The default accumulator must never construct — let alone call — a
	// detector that is not enabled.
	acc := NewFineAccumulator(FineConfig{})
	access := gpu.Access{Store: true, Raw: gpu.RawFromFloat32(1), Size: 4, Kind: gpu.KindFloat}
	acc.Add(1, access)
	acc.Add(1, access)
	if calls != 0 {
		t.Fatalf("disabled detector observed %d accesses", calls)
	}

	// Explicitly enabling it routes every access through Observe.
	set, err := ParseSet(append(DefaultNames(), "test counting"))
	if err != nil {
		t.Fatal(err)
	}
	acc = NewFineAccumulatorWith(FineConfig{}, FineDetectors(set))
	acc.Add(1, access)
	acc.Add(1, access)
	if calls != 2 {
		t.Fatalf("enabled detector observed %d accesses, want 2", calls)
	}
}

type noopDetector struct{}

func (noopDetector) Observe(objID int, a gpu.Access)                    {}
func (noopDetector) Merge(partial Detector)                             {}
func (noopDetector) Finalize(objID int, sh *ObjectShared) (Match, bool) { return Match{}, false }

func TestFineDetectorsSelection(t *testing.T) {
	// nil set = registry defaults: the six fine builtins, in order.
	regs := FineDetectors(nil)
	wantOrder := []Kind{SingleZero, SingleValue, FrequentValues, HeavyType, StructuredValues, ApproximateValues}
	if len(regs) < len(wantOrder) {
		t.Fatalf("default fine detectors: %d", len(regs))
	}
	for i, k := range wantOrder {
		if regs[i].Kind != k {
			t.Fatalf("fine detector %d = %v, want %v", i, regs[i].Kind, k)
		}
	}
	// Coarse kinds never appear even when explicitly enabled.
	set := Set{RedundantValues: true, SingleZero: true}
	regs = FineDetectors(set)
	if len(regs) != 1 || regs[0].Kind != SingleZero {
		t.Fatalf("subset fine detectors = %v", regs)
	}
}
