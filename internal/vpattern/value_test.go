package vpattern

import (
	"math"
	"testing"

	"valueexpert/gpu"
)

func TestIsZeroNegativeZero(t *testing.T) {
	// IEEE negative zero: sign bit set, everything else clear. The raw
	// bits are non-zero, so only the float interpretation sees zero.
	neg32 := Value{Raw: uint64(gpu.RawFromFloat32(float32(math.Copysign(0, -1)))), Size: 4, Kind: gpu.KindFloat}
	if neg32.Raw != 0x8000_0000 {
		t.Fatalf("-0.0f raw = %#x", neg32.Raw)
	}
	if !neg32.IsZero() {
		t.Fatal("4-byte -0.0 not zero")
	}
	neg64 := Value{Raw: gpu.RawFromFloat64(math.Copysign(0, -1)), Size: 8, Kind: gpu.KindFloat}
	if neg64.Raw != 0x8000_0000_0000_0000 {
		t.Fatalf("-0.0 raw = %#x", neg64.Raw)
	}
	if !neg64.IsZero() {
		t.Fatal("8-byte -0.0 not zero")
	}
	// The same bit patterns reinterpreted as integers are huge values.
	if (Value{Raw: neg32.Raw, Size: 4, Kind: gpu.KindUint}).IsZero() {
		t.Fatal("uint 0x80000000 treated as zero")
	}
	if (Value{Raw: neg64.Raw, Size: 8, Kind: gpu.KindInt}).IsZero() {
		t.Fatal("int64 min treated as zero")
	}
	if !(Value{Raw: 0, Size: 4, Kind: gpu.KindUint}).IsZero() {
		t.Fatal("raw zero not zero")
	}
}

func TestNumericSignExtension(t *testing.T) {
	cases := []struct {
		raw  uint64
		size uint8
		want float64
	}{
		// 1-byte: 0xFF is -1, 0x80 the minimum, 0x7F the maximum.
		{0xFF, 1, -1},
		{0x80, 1, -128},
		{0x7F, 1, 127},
		// 2-byte boundaries.
		{0xFFFF, 2, -1},
		{0x8000, 2, -32768},
		{0x7FFF, 2, 32767},
		// 4-byte boundaries.
		{0xFFFF_FFFF, 4, -1},
		{0x8000_0000, 4, math.MinInt32},
		{0x7FFF_FFFF, 4, math.MaxInt32},
		// High garbage bits above the value's width must be ignored: only
		// the low size*8 bits carry the value.
		{0xDEAD_0000_00FF, 1, -1},
	}
	for _, c := range cases {
		v := Value{Raw: c.raw, Size: c.size, Kind: gpu.KindInt}
		if got := v.Numeric(); got != c.want {
			t.Fatalf("Numeric(int%d raw %#x) = %v, want %v", 8*c.size, c.raw, got, c.want)
		}
	}
	// Unsigned stays unsigned.
	if got := (Value{Raw: 0xFF, Size: 1, Kind: gpu.KindUint}).Numeric(); got != 255 {
		t.Fatalf("uint8 0xFF = %v", got)
	}
}

func TestTruncateKeepBitsBoundaries(t *testing.T) {
	f32 := Value{Raw: uint64(gpu.RawFromFloat32(1.2345678)), Size: 4, Kind: gpu.KindFloat}
	f64 := Value{Raw: gpu.RawFromFloat64(1.23456789012345), Size: 8, Kind: gpu.KindFloat}

	// keepBits 0 drops the full mantissa (23 bits for float32, 52 for
	// float64), leaving sign+exponent only.
	t32 := f32.Truncate(0)
	if t32.Raw != f32.Raw&^uint64(1<<23-1)&0xffff_ffff {
		t.Fatalf("float32 Truncate(0) raw = %#x", t32.Raw)
	}
	if gpu.Float32FromRaw(t32.Raw) != 1.0 {
		t.Fatalf("float32 Truncate(0) = %v, want exponent-only 1.0", gpu.Float32FromRaw(t32.Raw))
	}
	t64 := f64.Truncate(0)
	if t64.Raw != f64.Raw&^uint64(1<<52-1) {
		t.Fatalf("float64 Truncate(0) raw = %#x", t64.Raw)
	}
	if gpu.Float64FromRaw(t64.Raw) != 1.0 {
		t.Fatalf("float64 Truncate(0) = %v", gpu.Float64FromRaw(t64.Raw))
	}

	// keepBits at the mantissa width is the identity (drop <= 0).
	if f32.Truncate(23) != f32 {
		t.Fatal("float32 Truncate(23) changed the value")
	}
	if f64.Truncate(52) != f64 {
		t.Fatal("float64 Truncate(52) changed the value")
	}
	// float32 at the float64 boundary: 52 > 23, still identity.
	if f32.Truncate(52) != f32 {
		t.Fatal("float32 Truncate(52) changed the value")
	}

	// One bit under the boundary clears exactly the lowest mantissa bit.
	if got, want := f32.Truncate(22).Raw, f32.Raw&^uint64(1); got != want {
		t.Fatalf("float32 Truncate(22) raw = %#x, want %#x", got, want)
	}
	if got, want := f64.Truncate(51).Raw, f64.Raw&^uint64(1); got != want {
		t.Fatalf("float64 Truncate(51) raw = %#x, want %#x", got, want)
	}
}

func TestEverGroupsSubsetPruning(t *testing.T) {
	tr := NewDuplicateTracker()
	a := []byte{1, 1, 1, 1}
	b := []byte{2, 2, 2, 2}
	c := []byte{3, 3, 3, 3}

	// Objects 1,2,3 hash identical at some API: ever-group {1,2,3}.
	tr.Observe(1, a)
	tr.Observe(2, a)
	tr.Observe(3, a)
	// Later 1 and 2 alone share new content: {1,2} ⊂ {1,2,3} — pruned.
	tr.Observe(1, b)
	tr.Observe(2, b)
	// 3 and 4 share other content: overlaps {1,2,3} but is no subset —
	// kept.
	tr.Observe(3, c)
	tr.Observe(4, c)

	got := tr.EverGroups()
	if len(got) != 2 {
		t.Fatalf("ever groups = %v, want [[1 2 3] [3 4]]", got)
	}
	if len(got[0]) != 3 || got[0][0] != 1 || got[0][1] != 2 || got[0][2] != 3 {
		t.Fatalf("largest group = %v", got[0])
	}
	if len(got[1]) != 2 || got[1][0] != 3 || got[1][1] != 4 {
		t.Fatalf("overlapping group = %v", got[1])
	}

	// A later observation reproducing an exact subset also prunes.
	tr2 := NewDuplicateTracker()
	tr2.Observe(5, a)
	tr2.Observe(6, a)
	tr2.Observe(5, b)
	tr2.Observe(6, b)
	if got := tr2.EverGroups(); len(got) != 1 {
		t.Fatalf("identical pair groups not deduplicated: %v", got)
	}
}
