package workloads

import (
	"valueexpert/callpath"
	"valueexpert/cuda"
	"valueexpert/gpu"
	"valueexpert/internal/vpattern"
)

func init() {
	register(&darknet{})
	register(&qmcpack{})
	register(&castro{})
	register(&barracuda{})
}

// ---------------------------------------------------------------------------
// Darknet — the paper's motivating example (§1.1, §8.1): a YOLO-style
// stack of convolution layers using the lowering (im2col + GEMM) method.
//
// Inefficiency I: forward_convolutional_layer_gpu calls fill_ongpu to
// zero l.output_gpu, then gemm_ongpu(beta=1) reads those zeros back and
// accumulates — with a single group the fill and the reads are pure
// overhead (redundant values). Fix: drop fill, call GEMM with beta=0.
//
// Inefficiency II: make_convolutional_layer copies the zero-initialized
// host array l.output into l.output_gpu and l.x_gpu (duplicate values;
// uniform H2D copies). Fix: cudaMemset on the device.
// ---------------------------------------------------------------------------
type darknet struct{}

func (*darknet) Name() string         { return "Darknet" }
func (*darknet) HotKernels() []string { return []string{"gemm_kernel", "fill_kernel"} }
func (*darknet) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.DuplicateValues,
		vpattern.FrequentValues, vpattern.SingleValue}
}
func (*darknet) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.DuplicateValues}
}

// darknetLayer mirrors the fields of Darknet's convolutional_layer that
// matter to the reproduction.
type darknetLayer struct {
	outputs   int
	outputGPU cuda.DevPtr
	xGPU      cuda.DevPtr
	weights   cuda.DevPtr
	nWeights  int

	// Batch-norm state, per layer (rolling statistics + affine params).
	rollingMean cuda.DevPtr
	rollingVar  cuda.DevPtr
	scales      cuda.DevPtr
	nFilters    int
}

func (w *darknet) Run(rt *cuda.Runtime, v Variant) error {
	const layersN = 4
	outputs := scaled(256 << 10)
	nWeights := 4096

	var layers []darknetLayer
	r := rng(11)

	// make_convolutional_layer: allocate + initialize per-layer buffers.
	for l := 0; l < layersN; l++ {
		rt.PushFrame(callpath.Frame{Func: "make_convolutional_layer", File: "convolutional_layer.c", Line: 553})
		lay := darknetLayer{outputs: outputs, nWeights: nWeights}
		var err error
		if lay.outputGPU, err = rt.MallocF32(outputs, "l.output_gpu"); err != nil {
			rt.PopFrame()
			return err
		}
		if lay.xGPU, err = rt.MallocF32(outputs, "l.x_gpu"); err != nil {
			rt.PopFrame()
			return err
		}
		if lay.weights, err = rt.MallocF32(nWeights, "l.weights_gpu"); err != nil {
			rt.PopFrame()
			return err
		}
		if v == Original {
			// l.output = xcalloc(...): zeros copied to the GPU, twice.
			zeros := make([]float32, outputs)
			if err := rt.CopyF32ToDevice(lay.outputGPU, zeros); err != nil {
				rt.PopFrame()
				return err
			}
			if err := rt.CopyF32ToDevice(lay.xGPU, zeros); err != nil {
				rt.PopFrame()
				return err
			}
		} else {
			// The fix: initialize on device.
			if err := rt.Memset(lay.outputGPU, 0, uint64(4*outputs)); err != nil {
				rt.PopFrame()
				return err
			}
			if err := rt.Memset(lay.xGPU, 0, uint64(4*outputs)); err != nil {
				rt.PopFrame()
				return err
			}
		}
		ws := make([]float32, nWeights)
		for i := range ws {
			ws[i] = float32(r.NormFloat64()) * 0.1
		}
		if err := rt.CopyF32ToDevice(lay.weights, ws); err != nil {
			rt.PopFrame()
			return err
		}
		// Batch-norm parameters: rolling_mean starts at zero, rolling
		// variance and scales at one — the usual Darknet initialization.
		lay.nFilters = 64
		if lay.rollingMean, err = rt.MallocF32(lay.nFilters, "l.rolling_mean_gpu"); err != nil {
			rt.PopFrame()
			return err
		}
		if lay.rollingVar, err = rt.MallocF32(lay.nFilters, "l.rolling_variance_gpu"); err != nil {
			rt.PopFrame()
			return err
		}
		if lay.scales, err = rt.MallocF32(lay.nFilters, "l.scales_gpu"); err != nil {
			rt.PopFrame()
			return err
		}
		onesF := make([]float32, lay.nFilters)
		for i := range onesF {
			onesF[i] = 1
		}
		if err := rt.Memset(lay.rollingMean, 0, uint64(4*lay.nFilters)); err != nil {
			rt.PopFrame()
			return err
		}
		if err := rt.CopyF32ToDevice(lay.rollingVar, onesF); err != nil {
			rt.PopFrame()
			return err
		}
		if err := rt.CopyF32ToDevice(lay.scales, onesF); err != nil {
			rt.PopFrame()
			return err
		}
		rt.PopFrame()
		layers = append(layers, lay)
	}

	// The network input (the im2col-ed image): uploaded once per forward
	// pass in both variants — traffic the optimization does not remove.
	rt.PushFrame(callpath.Frame{Func: "forward_network_gpu", File: "network_kernels.cu", Line: 60})
	dInput, err := rt.MallocF32(2*outputs, "net.input_gpu")
	if err != nil {
		rt.PopFrame()
		return err
	}
	rt.PopFrame()
	img := make([]float32, 2*outputs)
	for i := range img {
		img[i] = float32(r.NormFloat64())
	}

	// forward_convolutional_layer_gpu per layer.
	for li := range layers {
		lay := &layers[li]
		rt.PushFrame(callpath.Frame{Func: "forward_convolutional_layer_gpu", File: "convolutional_kernels.cu", Line: 390})

		// The layer's im2col input buffer travels in both variants.
		if err := rt.CopyF32ToDevice(dInput, img); err != nil {
			rt.PopFrame()
			return err
		}

		if v == Original {
			// fill_ongpu(l.outputs*l.batch, 0, l.output_gpu, 1)
			rt.PushFrame(callpath.Frame{Func: "fill_ongpu", File: "blas_kernels.cu", Line: 218})
			fill := &gpu.GoKernel{
				Name: "fill_kernel",
				Func: func(t *gpu.Thread) {
					i := t.GlobalID()
					if i >= lay.outputs {
						return
					}
					t.StoreF32(0, uint64(lay.outputGPU)+uint64(4*i), 0)
				},
			}
			if err := rt.Launch(fill, gpu.Dim1((lay.outputs+255)/256), gpu.Dim1(256)); err != nil {
				rt.PopFrame()
				rt.PopFrame()
				return err
			}
			rt.PopFrame()
		}

		// gemm_ongpu(..., beta, l.output_gpu): beta=1 in the original
		// (accumulate over l.output_gpu's zeros), beta=0 in the fix.
		beta := float32(1)
		if v == Optimized {
			beta = 0
		}
		rt.PushFrame(callpath.Frame{Func: "gemm_ongpu", File: "gemm.c", Line: 220})
		gemm := &gpu.GoKernel{
			Name: "gemm_kernel",
			Func: func(t *gpu.Thread) {
				i := t.GlobalID()
				if i >= lay.outputs {
					return
				}
				// Dot product over a weight tile and the input window.
				base := uint64(lay.weights) + uint64(4*((i*7)%(lay.nWeights-24)))
				t.BulkLoad(0, base, 24, 4, gpu.KindFloat)
				t.BulkLoad(3, uint64(dInput)+uint64(4*i), 2, 4, gpu.KindFloat)
				wv := t.LoadF32(4, base)
				acc := wv * float32(i%13)
				t.CountFP32(52)
				if beta != 0 {
					// The redundant read of the zero-filled output.
					c := t.LoadF32(1, uint64(lay.outputGPU)+uint64(4*i))
					acc += beta * c
					t.CountFP32(2)
				}
				t.StoreF32(2, uint64(lay.outputGPU)+uint64(4*i), acc)
			},
		}
		if err := rt.Launch(gemm, gpu.Dim1((lay.outputs+255)/256), gpu.Dim1(256)); err != nil {
			rt.PopFrame()
			rt.PopFrame()
			return err
		}
		rt.PopFrame()

		// Batch normalization: normalize each output with the per-filter
		// rolling statistics and apply the affine scale. rolling_mean is
		// all zeros and scales all ones (the single value / frequent
		// values patterns the paper's Table 1 marks for Darknet).
		rt.PushFrame(callpath.Frame{Func: "forward_batchnorm_layer_gpu", File: "batchnorm_layer.c", Line: 176})
		bn := &gpu.GoKernel{
			Name: "normalize_kernel",
			Func: func(t *gpu.Thread) {
				i := t.GlobalID()
				if i >= lay.outputs {
					return
				}
				f := uint64(4 * (i % lay.nFilters))
				x := t.LoadF32(0, uint64(lay.outputGPU)+uint64(4*i))
				mean := t.LoadF32(1, uint64(lay.rollingMean)+f)
				variance := t.LoadF32(2, uint64(lay.rollingVar)+f)
				scale := t.LoadF32(3, uint64(lay.scales)+f)
				t.CountFP32(5)
				t.StoreF32(4, uint64(lay.outputGPU)+uint64(4*i), scale*(x-mean)/(variance+1e-5))
			},
		}
		if err := rt.Launch(bn, gpu.Dim1((lay.outputs+255)/256), gpu.Dim1(256)); err != nil {
			rt.PopFrame()
			rt.PopFrame()
			return err
		}
		rt.PopFrame()

		// Leaky-ReLU activation in place.
		rt.PushFrame(callpath.Frame{Func: "activate_array_ongpu", File: "activation_kernels.cu", Line: 473})
		act := &gpu.GoKernel{
			Name: "activate_array_leaky_kernel",
			Func: func(t *gpu.Thread) {
				i := t.GlobalID()
				if i >= lay.outputs {
					return
				}
				x := t.LoadF32(0, uint64(lay.outputGPU)+uint64(4*i))
				t.CountFP32(2)
				if x < 0 {
					x *= 0.1
				}
				t.StoreF32(1, uint64(lay.outputGPU)+uint64(4*i), x)
			},
		}
		if err := rt.Launch(act, gpu.Dim1((lay.outputs+255)/256), gpu.Dim1(256)); err != nil {
			rt.PopFrame()
			rt.PopFrame()
			return err
		}
		rt.PopFrame()

		// Activation snapshot copy into l.x_gpu (kept on device).
		if err := rt.MemcpyD2D(lay.xGPU, lay.outputGPU, uint64(4*lay.outputs)); err != nil {
			rt.PopFrame()
			return err
		}
		rt.PopFrame()
	}

	out := make([]float32, 1024)
	rt.PushFrame(callpath.Frame{Func: "get_network_output_gpu", File: "network_kernels.cu", Line: 530})
	defer rt.PopFrame()
	return rt.CopyF32FromDevice(out, layers[len(layers)-1].outputGPU)
}

// ---------------------------------------------------------------------------
// QMCPACK — ValueExpert reports the redundant values pattern, but the
// inefficiency sits outside the bottleneck for the given input, so the
// optimization does not move the needle (Table 3: 1.00× memory). The
// reproduction has a small redundant re-initialization next to a dominant
// spline-evaluation loop.
// ---------------------------------------------------------------------------
type qmcpack struct{}

func (*qmcpack) Name() string         { return "QMCPACK" }
func (*qmcpack) HotKernels() []string { return nil }
func (*qmcpack) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues}
}
func (*qmcpack) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues}
}

func (w *qmcpack) Run(rt *cuda.Runtime, v Variant) error {
	n := scaled(512 << 10)
	small := 1024

	rt.PushFrame(callpath.Frame{Func: "einspline_spo", File: "EinsplineSPODeviceImpCUDA.cu", Line: 77})
	defer rt.PopFrame()

	dSpline, err := rt.MallocF64(n, "spline_coefs")
	if err != nil {
		return err
	}
	dPhase, err := rt.MallocF64(small, "phase_factors")
	if err != nil {
		return err
	}
	coefs := make([]float64, n)
	r := rng(12)
	for i := range coefs {
		coefs[i] = r.Float64()
	}
	if err := rt.CopyF64ToDevice(dSpline, coefs); err != nil {
		return err
	}
	if err := rt.Memset(dPhase, 0, uint64(8*small)); err != nil {
		return err
	}

	// The redundant part: phase factors are re-zeroed every step even
	// though nothing wrote them in between. The fix removes the repeat.
	zeroPhase := &gpu.GoKernel{
		Name: "zero_phase",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= small {
				return
			}
			t.StoreF64(0, uint64(dPhase)+uint64(8*i), 0)
		},
	}
	evaluate := &gpu.GoKernel{
		Name: "evaluate_v",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			c := t.LoadF64(0, uint64(dSpline)+uint64(8*i))
			acc := c
			for k := 0; k < 8; k++ {
				acc = acc*0.5 + c
			}
			t.CountFP64(16)
			t.StoreF64(1, uint64(dSpline)+uint64(8*i), acc)
		},
	}
	for step := 0; step < 3; step++ {
		if v == Original || step == 0 {
			if err := rt.Launch(zeroPhase, gpu.Dim1((small+255)/256), gpu.Dim1(256)); err != nil {
				return err
			}
		}
		if err := rt.Launch(evaluate, gpu.Dim1((n+255)/256), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]float64, small)
	return rt.CopyF64FromDevice(out, dPhase)
}

// ---------------------------------------------------------------------------
// Castro — the cellconslin_slopes_mmlim kernel from AMReX (§8.3): the
// limiter factor `a` is 1.0 for almost every cell of the Sedov input, so
// slopes *= a is identity computation leaving values unchanged (redundant
// values). Fix: conditionally bypass when a == 1.0 (1.27× / 1.24×).
// ---------------------------------------------------------------------------
type castro struct{}

func (*castro) Name() string         { return "Castro" }
func (*castro) HotKernels() []string { return []string{"cellconslin_slopes_mmlim"} }
func (*castro) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues}
}
func (*castro) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues}
}

func (w *castro) Run(rt *cuda.Runtime, v Variant) error {
	cells := scaled(128 << 10)
	const ncomp = 4

	rt.PushFrame(callpath.Frame{Func: "MLNodeLaplacian::prepareForSolve", File: "AMReX_MLNodeLap_K.H", Line: 1})
	defer rt.PopFrame()

	dSlopes, err := rt.MallocF64(cells*ncomp, "slopes")
	if err != nil {
		return err
	}
	dFactor, err := rt.MallocF64(cells, "alpha")
	if err != nil {
		return err
	}
	slopes := make([]float64, cells*ncomp)
	factor := make([]float64, cells)
	r := rng(13)
	for i := range slopes {
		slopes[i] = r.Float64()
	}
	for i := range factor {
		// The Sedov blast wave touches ~3% of cells; everywhere else the
		// minmod limiter is inactive (a == 1.0).
		if r.Intn(100) < 3 {
			factor[i] = r.Float64()
		} else {
			factor[i] = 1.0
		}
	}
	if err := rt.CopyF64ToDevice(dSlopes, slopes); err != nil {
		return err
	}
	if err := rt.CopyF64ToDevice(dFactor, factor); err != nil {
		return err
	}

	kernel := &gpu.GoKernel{
		Name: "cellconslin_slopes_mmlim",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= cells {
				return
			}
			// The slope reconstruction reads the cell's hydro state window
			// regardless of the limiter (both variants).
			win := i * ncomp
			if win+24 > cells*ncomp {
				win = cells*ncomp - 24
			}
			t.BulkLoad(3, uint64(dSlopes)+uint64(8*win), 24, 8, gpu.KindFloat)
			a := t.LoadF64(0, uint64(dFactor)+uint64(8*i))
			if v == Optimized && a == 1.0 {
				// Line 5 of Listing 5: skip the identity scaling.
				return
			}
			for k := 0; k < ncomp; k++ {
				s := t.LoadF64(1, uint64(dSlopes)+uint64(8*(i*ncomp+k)))
				t.CountFP64(2)
				t.StoreF64(2, uint64(dSlopes)+uint64(8*(i*ncomp+k)), s*a)
			}
		},
	}
	for it := 0; it < 2; it++ {
		if err := rt.Launch(kernel, gpu.Dim1((cells+255)/256), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]float64, 1024)
	return rt.CopyF64FromDevice(out, dSlopes)
}

// ---------------------------------------------------------------------------
// BarraCUDA — sequence alignment (§8.4). Two inefficiencies:
// copy_sequences_to_cuda_memory uploads global_sequences_index even when
// it is empty (redundant copies; fix: size check), and the global_alns
// result array is 99.6% zeros (frequent values; fix: record hit positions
// and download only those). Paper: kernel 1.06×, memory 1.13×.
// ---------------------------------------------------------------------------
type barracuda struct{}

func (*barracuda) Name() string         { return "BarraCUDA" }
func (*barracuda) HotKernels() []string { return []string{"cuda_inexact_match_caller"} }
func (*barracuda) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.FrequentValues}
}
func (*barracuda) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.FrequentValues}
}

func (w *barracuda) Run(rt *cuda.Runtime, v Variant) error {
	reads := scaled(128 << 10)
	const batches = 4

	rt.PushFrame(callpath.Frame{Func: "cuda_alignment_core", File: "barracuda.cu", Line: 1120})
	defer rt.PopFrame()

	dSeqIdx, err := rt.MallocI32(reads, "global_sequences_index")
	if err != nil {
		return err
	}
	dSeqs, err := rt.MallocU8(reads*16, "global_sequences")
	if err != nil {
		return err
	}
	dAlns, err := rt.MallocI32(reads, "global_alns")
	if err != nil {
		return err
	}
	dHits, err := rt.MallocI32(reads, "hits")
	if err != nil {
		return err
	}
	if err := rt.Memset(dAlns, 0, uint64(4*reads)); err != nil {
		return err
	}
	if err := rt.Memset(dHits, 0, uint64(4*reads)); err != nil {
		return err
	}

	r := rng(14)
	seqs := make([]byte, reads*16)
	for i := range seqs {
		seqs[i] = byte(r.Intn(4))
	}
	idx := make([]int32, reads)

	match := &gpu.GoKernel{
		Name: "cuda_inexact_match_caller",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= reads {
				return
			}
			var score int32
			for k := 0; k < 4; k++ {
				b := t.LoadU8(0, uint64(dSeqs)+uint64(i*16+k))
				if b == 3 {
					score++
				}
				t.CountInt(2)
			}
			// 99.6% of reads do not align: write zero (frequent values).
			aligned := score >= 4
			if v == Optimized {
				if aligned {
					t.StoreI32(1, uint64(dAlns)+uint64(4*i), score)
					t.StoreI32(2, uint64(dHits)+uint64(4*i), 1)
				}
				return
			}
			if aligned {
				t.StoreI32(1, uint64(dAlns)+uint64(4*i), score)
			} else {
				t.StoreI32(1, uint64(dAlns)+uint64(4*i), 0)
			}
		},
	}

	for b := 0; b < batches; b++ {
		// Each batch brings fresh sequence data (both variants)...
		if err := rt.CopyU8ToDevice(dSeqs, seqs); err != nil {
			return err
		}
		// ...but global_sequences_index is empty and unchanged; the
		// original still re-uploads it every batch (the §8.4 size-check
		// fix skips it after the first).
		if v == Original || b == 0 {
			if err := rt.CopyI32ToDevice(dSeqIdx, idx); err != nil {
				return err
			}
		}
		if err := rt.Launch(match, gpu.Dim1((reads+255)/256), gpu.Dim1(256)); err != nil {
			return err
		}
		if v == Original {
			out := make([]int32, reads)
			if err := rt.CopyI32FromDevice(out, dAlns); err != nil {
				return err
			}
		} else {
			// Download only the hit bitmap plus a small result window.
			hits := make([]int32, reads/64)
			if err := rt.CopyI32FromDevice(hits, dHits); err != nil {
				return err
			}
		}
	}
	return nil
}
