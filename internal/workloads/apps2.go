package workloads

import (
	"valueexpert/callpath"
	"valueexpert/cuda"
	"valueexpert/gpu"
	"valueexpert/internal/vpattern"
)

func init() {
	register(&deepwave{})
	register(&bert{})
	register(&resnet50{})
	register(&namd{})
	register(&lammps{})
}

// ---------------------------------------------------------------------------
// PyTorch-Deepwave — replication_pad3d_backward_cuda (§8.2, Listing 3):
// gradInput is created with at::zeros_like (a memset) and then zeroed
// again by gradInput.zero_() before the accumulation kernel runs — 100%
// redundant writes and the single zero pattern. Fix: empty_like + drop
// the extra zero_() (upstreamed to PyTorch). Paper: 1.07× / 1.04×.
// ---------------------------------------------------------------------------
type deepwave struct{}

func (*deepwave) Name() string         { return "PyTorch-Deepwave" }
func (*deepwave) HotKernels() []string { return []string{"replication_pad3d_backward"} }
func (*deepwave) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.SingleValue, vpattern.SingleZero}
}
func (*deepwave) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues}
}

func (w *deepwave) Run(rt *cuda.Runtime, v Variant) error {
	n := scaled(512 << 10)
	pad := 8

	rt.PushFrame(callpath.Frame{Func: "replication_pad3d_backward_cuda", File: "ReplicationPadding.cu", Line: 317})
	defer rt.PopFrame()

	dGradOut, err := rt.MallocF32(n+2*pad, "gradOutput")
	if err != nil {
		return err
	}
	dGradIn, err := rt.MallocF32(n, "gradInput")
	if err != nil {
		return err
	}
	gradOut := make([]float32, n+2*pad)
	r := rng(15)
	for i := range gradOut {
		gradOut[i] = float32(r.NormFloat64())
	}
	if err := rt.CopyF32ToDevice(dGradOut, gradOut); err != nil {
		return err
	}

	// at::zeros_like — both variants start with a zeroed tensor; the
	// optimized code uses empty_like + writes in the kernel, so no memset.
	if v == Original {
		if err := rt.Memset(dGradIn, 0, uint64(4*n)); err != nil {
			return err
		}
		// gradInput.zero_(): the redundant second zeroing (Listing 3,
		// line 3), a full kernel writing zeros over zeros.
		zero := &gpu.GoKernel{
			Name: "zero_",
			Func: func(t *gpu.Thread) {
				i := t.GlobalID()
				if i >= n {
					return
				}
				t.StoreF32(0, uint64(dGradIn)+uint64(4*i), 0)
			},
		}
		if err := rt.Launch(zero, gpu.Dim1((n+255)/256), gpu.Dim1(256)); err != nil {
			return err
		}
	}

	backward := &gpu.GoKernel{
		Name: "replication_pad3d_backward",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			// The pad-backward reduction streams the replication window of
			// the output gradient in both variants.
			t.BulkLoad(3, uint64(dGradOut)+uint64(4*i), 8, 4, gpu.KindFloat)
			g := t.LoadF32(0, uint64(dGradOut)+uint64(4*(i+pad)))
			if v == Original {
				// Accumulates into the (zeroed) gradInput.
				cur := t.LoadF32(1, uint64(dGradIn)+uint64(4*i))
				t.CountFP32(1)
				t.StoreF32(2, uint64(dGradIn)+uint64(4*i), cur+g)
			} else {
				// With empty_like the kernel overwrites instead.
				t.StoreF32(2, uint64(dGradIn)+uint64(4*i), g)
			}
		},
	}
	for it := 0; it < 2; it++ {
		if v == Original && it > 0 {
			if err := rt.Memset(dGradIn, 0, uint64(4*n)); err != nil {
				return err
			}
		}
		if err := rt.Launch(backward, gpu.Dim1((n+255)/256), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]float32, 1024)
	return rt.CopyF32FromDevice(out, dGradIn)
}

// ---------------------------------------------------------------------------
// PyTorch-Bert — the embedding operator (§8.2): the padding region of the
// out tensor is zeroed in reset_parameters and re-zeroed by
// embedding.masked_fill_ on every iteration although nothing dirtied it
// (redundant values). Fix: drop the per-iteration re-initialization.
// Paper: 1.57× / 1.59× for the embedding operator.
// ---------------------------------------------------------------------------
type bert struct{}

func (*bert) Name() string         { return "PyTorch-Bert" }
func (*bert) HotKernels() []string { return []string{"embedding", "masked_fill_"} }
func (*bert) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues}
}
func (*bert) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues}
}

func (w *bert) Run(rt *cuda.Runtime, v Variant) error {
	vocab := scaled(32 << 10)
	const dim = 64
	seq := 512
	padRows := seq / 4 // attention-mask padding

	rt.PushFrame(callpath.Frame{Func: "BertEmbeddings::forward", File: "modeling_bert.py", Line: 220})
	defer rt.PopFrame()

	dWeight, err := rt.MallocF32(vocab*dim, "embedding.weight")
	if err != nil {
		return err
	}
	dOut, err := rt.MallocF32(seq*dim, "out")
	if err != nil {
		return err
	}
	dIds, err := rt.MallocI32(seq, "input_ids")
	if err != nil {
		return err
	}
	r := rng(16)
	wts := make([]float32, vocab*dim)
	for i := range wts {
		wts[i] = float32(r.NormFloat64()) * 0.02
	}
	if err := rt.CopyF32ToDevice(dWeight, wts); err != nil {
		return err
	}
	ids := make([]int32, seq)
	for i := range ids {
		if i < seq-padRows {
			ids[i] = int32(r.Intn(vocab))
		} // padding ids stay 0
	}
	if err := rt.CopyI32ToDevice(dIds, ids); err != nil {
		return err
	}
	// reset_parameters: zero the padding region once.
	if err := rt.Memset(dOut.Offset(uint64(4*(seq-padRows)*dim)), 0, uint64(4*padRows*dim)); err != nil {
		return err
	}

	gather := &gpu.GoKernel{
		Name: "embedding",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= (seq-padRows)*dim {
				return
			}
			row := i / dim
			col := i % dim
			id := t.LoadI32(0, uint64(dIds)+uint64(4*row))
			val := t.LoadF32(1, uint64(dWeight)+uint64(4*(int(id)*dim+col)))
			t.CountFP32(1)
			t.StoreF32(2, uint64(dOut)+uint64(4*i), val)
		},
	}
	maskFill := &gpu.GoKernel{
		Name: "masked_fill_",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= padRows*dim {
				return
			}
			t.StoreF32(0, uint64(dOut)+uint64(4*((seq-padRows)*dim+i)), 0)
		},
	}
	// LayerNorm over each row, following the embedding lookup (both
	// variants; not part of the optimized operator's hot set).
	dGamma, err := rt.MallocF32(dim, "LayerNorm.weight")
	if err != nil {
		return err
	}
	gamma := make([]float32, dim)
	for i := range gamma {
		gamma[i] = 1
	}
	if err := rt.CopyF32ToDevice(dGamma, gamma); err != nil {
		return err
	}
	layerNorm := &gpu.GoKernel{
		Name: "layer_norm",
		Func: func(t *gpu.Thread) {
			row := t.GlobalID()
			if row >= seq-padRows {
				return
			}
			base := uint64(dOut) + uint64(4*row*dim)
			var mean float32
			for c := 0; c < dim; c++ {
				mean += t.LoadF32(0, base+uint64(4*c))
			}
			mean /= float32(dim)
			t.CountFP32(2 * dim)
			for c := 0; c < dim; c++ {
				g := t.LoadF32(1, uint64(dGamma)+uint64(4*c))
				x := t.LoadF32(2, base+uint64(4*c))
				t.CountFP32(3)
				t.StoreF32(3, base+uint64(4*c), g*(x-mean))
			}
		},
	}

	for iter := 0; iter < 8; iter++ {
		if err := rt.Launch(gather, gpu.Dim1(((seq-padRows)*dim+255)/256), gpu.Dim1(256)); err != nil {
			return err
		}
		if v == Original {
			// Re-zeroes the untouched padding every iteration.
			if err := rt.Launch(maskFill, gpu.Dim1((padRows*dim+255)/256), gpu.Dim1(256)); err != nil {
				return err
			}
		}
		if err := rt.Launch(layerNorm, gpu.Dim1(seq-padRows), gpu.Dim1(1)); err != nil {
			return err
		}
	}
	out := make([]float32, 1024)
	return rt.CopyF32FromDevice(out, dOut)
}

// ---------------------------------------------------------------------------
// PyTorch-Resnet50 — cuDNN-style convolution keeps a `ones` tensor for
// the +bias GEMV even though the network's batchnorm absorbs bias, so the
// tensor is resized, zero-initialized, filled with ones, and then used
// only to multiply by zero-weighted bias (redundant values; single value
// pattern). Fix: skip the ones tensor when bias is absent.
// Paper: 1.02× / 1.03×.
// ---------------------------------------------------------------------------
type resnet50 struct{}

func (*resnet50) Name() string         { return "PyTorch-Resnet50" }
func (*resnet50) HotKernels() []string { return []string{"conv_forward", "fill_ones"} }
func (*resnet50) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.SingleValue, vpattern.SingleZero}
}
func (*resnet50) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.SingleValue}
}

func (w *resnet50) Run(rt *cuda.Runtime, v Variant) error {
	spatial := scaled(128 << 10) // output spatial elements per layer
	const layersN = 3

	for l := 0; l < layersN; l++ {
		rt.PushFrame(callpath.Frame{Func: "cudnn_convolution_forward", File: "Conv_v7.cpp", Line: 183})

		dIn, err := rt.MallocF32(spatial, "input")
		if err != nil {
			rt.PopFrame()
			return err
		}
		dOut, err := rt.MallocF32(spatial, "output")
		if err != nil {
			rt.PopFrame()
			return err
		}
		in := make([]float32, spatial)
		r := rng(int64(17 + l))
		for i := range in {
			in[i] = float32(r.NormFloat64())
		}
		if err := rt.CopyF32ToDevice(dIn, in); err != nil {
			rt.PopFrame()
			return err
		}

		// The (absent) bias tensor: all zeros, read by every output element.
		dBias, err := rt.MallocF32(spatial, "bias")
		if err != nil {
			rt.PopFrame()
			return err
		}
		if err := rt.Memset(dBias, 0, uint64(4*spatial)); err != nil {
			rt.PopFrame()
			return err
		}

		var dOnes cuda.DevPtr
		if v == Original {
			// Listing 4: ones.resize_(...).zero_() then fill with 1.
			if dOnes, err = rt.MallocF32(spatial, "ones"); err != nil {
				rt.PopFrame()
				return err
			}
			if err := rt.Memset(dOnes, 0, uint64(4*spatial)); err != nil {
				rt.PopFrame()
				return err
			}
		}
		fill := &gpu.GoKernel{
			Name: "fill_ones",
			Func: func(t *gpu.Thread) {
				i := t.GlobalID()
				if i >= spatial {
					return
				}
				t.StoreF32(0, uint64(dOnes)+uint64(4*i), 1)
			},
		}
		conv := &gpu.GoKernel{
			Name: "conv_forward",
			Func: func(t *gpu.Thread) {
				i := t.GlobalID()
				if i >= spatial {
					return
				}
				// The implicit-GEMM filter taps dominate both variants.
				win := i
				if win+64 > spatial {
					win = spatial - 64
				}
				t.BulkLoad(4, uint64(dIn)+uint64(4*win), 64, 4, gpu.KindFloat)
				x := t.LoadF32(0, uint64(dIn)+uint64(4*i))
				acc := x * 0.5
				t.CountFP32(134)
				if v == Original {
					// +bias path reads the ones tensor and the zero bias
					// even though batchnorm absorbs bias entirely.
					one := t.LoadF32(1, uint64(dOnes)+uint64(4*i))
					b := t.LoadF32(3, uint64(dBias)+uint64(4*i))
					acc += one * b
					t.CountFP32(2)
				}
				t.StoreF32(2, uint64(dOut)+uint64(4*i), acc)
			},
		}
		// Two forward passes: the second fill_ones rewrites ones over ones
		// (fully redundant) — the 14.25MB the paper reports at Listing 4.
		for pass := 0; pass < 2; pass++ {
			if v == Original {
				if err := rt.Launch(fill, gpu.Dim1((spatial+255)/256), gpu.Dim1(256)); err != nil {
					rt.PopFrame()
					return err
				}
			}
			if err := rt.Launch(conv, gpu.Dim1((spatial+255)/256), gpu.Dim1(256)); err != nil {
				rt.PopFrame()
				return err
			}
		}
		out := make([]float32, 512)
		if err := rt.CopyF32FromDevice(out, dOut); err != nil {
			rt.PopFrame()
			return err
		}
		rt.PopFrame()
	}
	return nil
}

// ---------------------------------------------------------------------------
// NAMD — nonbondedForceKernel: ValueExpert finds redundant values, single
// zero, and heavy type patterns, but for the given input the inefficient
// loop nest is not the bottleneck, so speedups are 1.00× (§8.6). The
// reproduction puts the patterns in a tiny exclusion-correction kernel
// next to the dominant force kernel.
// ---------------------------------------------------------------------------
type namd struct{}

func (*namd) Name() string         { return "NAMD" }
func (*namd) HotKernels() []string { return []string{"nonbondedForceKernel"} }
func (*namd) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.SingleZero, vpattern.HeavyType}
}
func (*namd) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.SingleZero}
}

func (w *namd) Run(rt *cuda.Runtime, v Variant) error {
	atoms := scaled(256 << 10)
	small := 2048

	rt.PushFrame(callpath.Frame{Func: "CudaComputeNonbondedKernel::nonbondedForce", File: "CudaComputeNonbondedKernel.cu", Line: 910})
	defer rt.PopFrame()

	dForces, err := rt.MallocF32(atoms*3, "d_forces")
	if err != nil {
		return err
	}
	dExcl, err := rt.MallocI32(small, "overflowExclusions")
	if err != nil {
		return err
	}
	dCoords, err := rt.MallocF32(atoms*3, "d_coords")
	if err != nil {
		return err
	}
	coords := make([]float32, atoms*3)
	r := rng(19)
	for i := range coords {
		coords[i] = float32(r.Float64()) * 100
	}
	if err := rt.CopyF32ToDevice(dCoords, coords); err != nil {
		return err
	}
	if err := rt.Memset(dForces, 0, uint64(4*atoms*3)); err != nil {
		return err
	}
	// The exclusion overflow list: int32 values all zero or tiny (heavy
	// type + single zero), re-zeroed each step (redundant).
	if err := rt.Memset(dExcl, 0, uint64(4*small)); err != nil {
		return err
	}

	zeroExcl := &gpu.GoKernel{
		Name: "zeroExclusions",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= small {
				return
			}
			cur := t.LoadI32(0, uint64(dExcl)+uint64(4*i))
			if v == Optimized && cur == 0 {
				return // bypass re-zeroing zeros
			}
			t.StoreI32(1, uint64(dExcl)+uint64(4*i), 0)
		},
	}
	force := &gpu.GoKernel{
		Name: "nonbondedForceKernel",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= atoms {
				return
			}
			x := t.LoadF32(0, uint64(dCoords)+uint64(4*(3*i)))
			y := t.LoadF32(1, uint64(dCoords)+uint64(4*(3*i+1)))
			z := t.LoadF32(2, uint64(dCoords)+uint64(4*(3*i+2)))
			fx, fy, fz := x, y, z
			for k := 0; k < 8; k++ {
				fx = fx*0.99 + y*0.01
				fy = fy*0.99 + z*0.01
				fz = fz*0.99 + x*0.01
			}
			t.CountFP32(8 * 6)
			t.StoreF32(3, uint64(dForces)+uint64(4*(3*i)), fx)
			t.StoreF32(4, uint64(dForces)+uint64(4*(3*i+1)), fy)
			t.StoreF32(5, uint64(dForces)+uint64(4*(3*i+2)), fz)
		},
	}
	for step := 0; step < 2; step++ {
		if err := rt.Launch(zeroExcl, gpu.Dim1((small+255)/256), gpu.Dim1(256)); err != nil {
			return err
		}
		if err := rt.Launch(force, gpu.Dim1((atoms+255)/256), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]float32, 1024)
	return rt.CopyF32FromDevice(out, dForces)
}

// ---------------------------------------------------------------------------
// LAMMPS — a memory-time-only optimization (Table 3: 6.03× / 5.19×
// memory): the neighbor-list and type arrays are re-uploaded every
// timestep although they change only on re-neighboring steps, and most of
// the upload is the frequent (unchanged) portion. The fix uploads them
// only when rebuilt.
// ---------------------------------------------------------------------------
type lammps struct{}

func (*lammps) Name() string         { return "LAMMPS" }
func (*lammps) HotKernels() []string { return nil }
func (*lammps) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.FrequentValues}
}
func (*lammps) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.FrequentValues}
}

func (w *lammps) Run(rt *cuda.Runtime, v Variant) error {
	atoms := scaled(128 << 10)
	const neigh = 64
	const steps = 6

	rt.PushFrame(callpath.Frame{Func: "PairLJCutKokkos::compute", File: "pair_lj_cut_kokkos.cpp", Line: 120})
	defer rt.PopFrame()

	dNeigh, err := rt.MallocI32(atoms*neigh, "d_neighbors")
	if err != nil {
		return err
	}
	dType, err := rt.MallocI32(atoms, "d_type")
	if err != nil {
		return err
	}
	dX, err := rt.MallocF64(atoms*3, "d_x")
	if err != nil {
		return err
	}
	dF, err := rt.MallocF64(atoms*3, "d_f")
	if err != nil {
		return err
	}

	r := rng(20)
	// Pre-encode the neighbor list once; each step ships the same raw
	// bytes, like the real code re-sending an unchanged device view.
	neighBytes := make([]byte, 4*atoms*neigh)
	for i := 0; i < atoms*neigh; i++ {
		nv := uint32(r.Intn(atoms))
		neighBytes[4*i] = byte(nv)
		neighBytes[4*i+1] = byte(nv >> 8)
		neighBytes[4*i+2] = byte(nv >> 16)
		neighBytes[4*i+3] = byte(nv >> 24)
	}
	// Mostly one atom type with a sprinkling of solutes: type lookups are
	// dominated by a single hot value (frequent values).
	types := make([]int32, atoms)
	for i := range types {
		if r.Intn(10) == 0 {
			types[i] = 2
		} else {
			types[i] = 1
		}
	}
	pos := make([]float64, atoms*3)
	for i := range pos {
		pos[i] = r.Float64() * 50
	}

	pair := &gpu.GoKernel{
		Name: "pair_lj_compute",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= atoms/8 { // copy-bound app: light compute
				return
			}
			ty := t.LoadI32(2, uint64(dType)+uint64(4*i))
			x := t.LoadF64(0, uint64(dX)+uint64(8*(3*i)))
			t.CountFP64(4)
			t.StoreF64(1, uint64(dF)+uint64(8*(3*i)), x*0.5*float64(ty))
		},
	}

	for step := 0; step < steps; step++ {
		reneighbored := step == 0 // one rebuild in the window
		if v == Original || reneighbored {
			if err := rt.MemcpyH2D(dNeigh, neighBytes); err != nil {
				return err
			}
			if err := rt.CopyI32ToDevice(dType, types); err != nil {
				return err
			}
		}
		// Positions change every step and must always be uploaded.
		if err := rt.CopyF64ToDevice(dX, pos); err != nil {
			return err
		}
		if err := rt.Launch(pair, gpu.Dim1((atoms/8+255)/256), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]float64, 1024)
	return rt.CopyF64FromDevice(out, dF)
}
