package workloads

import (
	"bytes"
	"testing"

	"valueexpert/cuda"
	"valueexpert/gpu"
	"valueexpert/internal/core"
)

// callSiteRun profiles one workload either directly from the test
// goroutine or from a spawned goroutine with a different stack, and
// returns the normalized report bytes.
func callSiteRun(t *testing.T, w Workload, indirect bool) []byte {
	t.Helper()
	cfg := core.Config{Coarse: true, Fine: true, Program: w.Name()}
	rt := cuda.NewRuntime(gpu.RTX2080Ti)
	run := func(rt *cuda.Runtime) error { return w.Run(rt, Original) }
	var p *core.Profiler
	var err error
	if indirect {
		done := make(chan struct{})
		go func() {
			defer close(done)
			p, err = core.Profile(cuda.NewLiveSource(rt, run), cfg)
		}()
		<-done
	} else {
		p, err = core.Profile(cuda.NewLiveSource(rt, run), cfg)
	}
	if err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	p.Detach()
	rep := *p.Report()
	rep.Stats.AnalysisTime = 0
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReportsCallSiteIndependent: every bundled workload's report must
// not depend on which goroutine or call site drives it — every GPU API
// call needs a synthetic frame covering it, or the captured Go stack
// leaks the harness entry point into the report's call paths. The
// vxprofd daemon relies on this: a session (run on a stream-handler
// goroutine) must produce bytes identical to a one-shot vxprof run of
// the same workload.
func TestReportsCallSiteIndependent(t *testing.T) {
	old := Scale
	Scale = 64
	defer func() { Scale = old }()
	for _, w := range All() {
		direct := callSiteRun(t, w, false)
		indirect := callSiteRun(t, w, true)
		if !bytes.Equal(direct, indirect) {
			t.Errorf("%s: report depends on the call site (an API call is missing its synthetic frame)", w.Name())
		}
	}
}
