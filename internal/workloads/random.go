// Seeded random workload generation for the property-based differential
// harness: RandomProgram draws an alloc/copy/kernel/free schedule from a
// seed and executes it on a runtime. The schedule is a pure function of
// the seed — it is drawn completely before execution — so the same seed
// issues the same API sequence whether or not faults fire; faults only
// change which calls fail and which dependent calls are skipped.
package workloads

import (
	"math/rand"

	"valueexpert/callpath"
	"valueexpert/cuda"
	"valueexpert/gpu"
)

// randOp is one drawn operation of a RandomProgram schedule.
type randOp struct {
	kind   int // opAlloc..opFree
	buf    int // primary buffer index (into the draw-order alloc list)
	src    int // secondary buffer index for d2d / two-input kernels
	elems  int // allocation size, in float32 elements
	class  int // value class for h2d fills
	scalar float32
	kernel int // kernel selector for launches
}

const (
	opAlloc = iota
	opH2D
	opMemset
	opD2D
	opD2H
	opLaunch
	opFree
	numRandOps
)

// Value classes for host fills — the pattern families coarse analysis
// classifies (zeros, a constant, two-valued, iota, random).
const (
	classZeros = iota
	classConstant
	classTwoValued
	classIota
	classRandom
	numClasses
)

// DefaultRandomOps is the schedule length a zero Ops selects.
const DefaultRandomOps = 48

// RandomProgram is a seeded random GPU program for differential testing.
type RandomProgram struct {
	// Seed selects the schedule; equal seeds replay equal schedules.
	Seed int64
	// Ops is the schedule length (0 = DefaultRandomOps).
	Ops int
	// Tolerant makes Run swallow API errors (recording them in the
	// returned slice) and skip operations depending on a failed
	// allocation — how a fault-tolerant application degrades. When false,
	// Run stops at the first error.
	Tolerant bool
}

// schedule draws the full operation list. Buffer indices refer to the
// allocation draw order; execution maps them to live allocations.
func (p *RandomProgram) schedule() []randOp {
	n := p.Ops
	if n <= 0 {
		n = DefaultRandomOps
	}
	r := rand.New(rand.NewSource(p.Seed))
	ops := make([]randOp, 0, n+3)
	allocs := 0
	draw := func(kind int) randOp {
		op := randOp{
			kind:   kind,
			elems:  64 + r.Intn(449), // 64..512 float32 elements
			class:  r.Intn(numClasses),
			scalar: float32(r.Intn(8)),
			kernel: r.Intn(numRandKernels),
		}
		if allocs > 0 {
			op.buf = r.Intn(allocs)
			op.src = r.Intn(allocs)
		}
		if kind == opAlloc {
			allocs++
		}
		return op
	}
	// Every schedule starts alloc → fill → launch so each fault point has
	// work to hit even at occurrence 1.
	ops = append(ops, draw(opAlloc), draw(opH2D), draw(opLaunch))
	for len(ops) < n {
		kind := r.Intn(numRandOps)
		if kind == opFree && allocs < 2 {
			kind = opAlloc // keep at least one buffer live
		}
		ops = append(ops, draw(kind))
	}
	return ops
}

// hostValues materializes a value-class fill.
func hostValues(r *rand.Rand, class, n int, scalar float32) []float32 {
	out := make([]float32, n)
	switch class {
	case classZeros:
	case classConstant:
		for i := range out {
			out[i] = scalar
		}
	case classTwoValued:
		for i := range out {
			out[i] = scalar * float32(i%2)
		}
	case classIota:
		for i := range out {
			out[i] = float32(i % 97)
		}
	default:
		for i := range out {
			out[i] = float32(r.Intn(1024)) / 32
		}
	}
	return out
}

// Kernel selectors.
const (
	kernFill = iota
	kernScale
	kernAxpy
	kernCopy
	numRandKernels
)

func randKernel(sel int, dst, src cuda.DevPtr, n int, scalar float32) *gpu.GoKernel {
	switch sel {
	case kernFill:
		return &gpu.GoKernel{Name: "rnd_fill", Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			t.StoreF32(0, uint64(dst)+uint64(4*i), scalar)
		}}
	case kernScale:
		return &gpu.GoKernel{Name: "rnd_scale", Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			v := t.LoadF32(0, uint64(dst)+uint64(4*i))
			t.CountFP32(1)
			t.StoreF32(1, uint64(dst)+uint64(4*i), scalar*v)
		}}
	case kernAxpy:
		return &gpu.GoKernel{Name: "rnd_axpy", Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			x := t.LoadF32(0, uint64(src)+uint64(4*i))
			y := t.LoadF32(1, uint64(dst)+uint64(4*i))
			t.CountFP32(2)
			t.StoreF32(2, uint64(dst)+uint64(4*i), scalar*x+y)
		}}
	default:
		return &gpu.GoKernel{Name: "rnd_copy", Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			v := t.LoadF32(0, uint64(src)+uint64(4*i))
			t.StoreF32(1, uint64(dst)+uint64(4*i), v)
		}}
	}
}

// liveBuf is one allocation during execution.
type liveBuf struct {
	ptr   cuda.DevPtr
	elems int
	live  bool
}

// Run executes the schedule on rt. In tolerant mode it returns every API
// error encountered (empty = clean run); otherwise it returns the first
// error alone. The value-fill generator is seeded independently of the
// schedule so fills don't shift when operations are skipped.
func (p *RandomProgram) Run(rt *cuda.Runtime) []error {
	// A synthetic frame keeps captured call paths independent of the
	// goroutine and call site running the program, so reports stay
	// byte-comparable across harness entry points (one-shot runs, daemon
	// sessions, replay).
	rt.PushFrame(callpath.Frame{Func: "RandomProgram.Run", File: "workloads/random.go", Line: 1})
	defer rt.PopFrame()
	vals := rand.New(rand.NewSource(p.Seed ^ 0x5eed))
	var (
		bufs []liveBuf
		errs []error
	)
	fail := func(err error) bool {
		if err == nil {
			return false
		}
		errs = append(errs, err)
		return true
	}
	// pick maps a drawn buffer index to a live allocation, scanning
	// forward from the index so frees and failed allocs redirect instead
	// of aborting the operation.
	pick := func(idx int) *liveBuf {
		if len(bufs) == 0 {
			return nil
		}
		for off := 0; off < len(bufs); off++ {
			b := &bufs[(idx+off)%len(bufs)]
			if b.live {
				return b
			}
		}
		return nil
	}
	for _, op := range p.schedule() {
		if len(errs) > 0 && !p.Tolerant {
			break
		}
		switch op.kind {
		case opAlloc:
			ptr, err := rt.MallocF32(op.elems, "rnd")
			// A failed alloc still occupies its draw slot, dead, so later
			// buffer indices keep their meaning.
			bufs = append(bufs, liveBuf{ptr: ptr, elems: op.elems, live: err == nil})
			fail(err)
		case opH2D:
			if b := pick(op.buf); b != nil {
				fail(rt.CopyF32ToDevice(b.ptr, hostValues(vals, op.class, b.elems, op.scalar)))
			}
		case opMemset:
			if b := pick(op.buf); b != nil {
				fail(rt.Memset(b.ptr, byte(op.class), uint64(4*b.elems)))
			}
		case opD2D:
			dst, src := pick(op.buf), pick(op.src)
			if dst != nil && src != nil && dst != src {
				n := min(dst.elems, src.elems)
				fail(rt.MemcpyD2D(dst.ptr, src.ptr, uint64(4*n)))
			}
		case opD2H:
			if b := pick(op.buf); b != nil {
				fail(rt.CopyF32FromDevice(make([]float32, b.elems), b.ptr))
			}
		case opLaunch:
			dst, src := pick(op.buf), pick(op.src)
			if dst == nil {
				break
			}
			if src == nil {
				src = dst
			}
			n := dst.elems
			if src.elems < n {
				n = src.elems
			}
			k := randKernel(op.kernel, dst.ptr, src.ptr, n, op.scalar)
			fail(rt.Launch(k, gpu.Dim1((n+63)/64), gpu.Dim1(64)))
		case opFree:
			if b := pick(op.buf); b != nil {
				if !fail(rt.Free(b.ptr)) {
					b.live = false
				}
			}
		}
	}
	return errs
}
