package workloads

import (
	"errors"
	"reflect"
	"testing"

	"valueexpert/cuda"
	"valueexpert/gpu"
	"valueexpert/internal/faultinject"
)

func TestRandomScheduleIsPureFunctionOfSeed(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, 12345} {
		p := &RandomProgram{Seed: seed}
		a, b := p.schedule(), p.schedule()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedule differs between draws", seed)
		}
		if len(a) != DefaultRandomOps {
			t.Fatalf("seed %d: schedule length %d, want %d", seed, len(a), DefaultRandomOps)
		}
		if a[0].kind != opAlloc || a[1].kind != opH2D || a[2].kind != opLaunch {
			t.Fatalf("seed %d: schedule missing forced alloc/fill/launch prefix", seed)
		}
	}
	if !reflect.DeepEqual((&RandomProgram{Seed: 3}).schedule(), (&RandomProgram{Seed: 3, Tolerant: true}).schedule()) {
		t.Fatal("tolerance must not change the drawn schedule")
	}
	if reflect.DeepEqual((&RandomProgram{Seed: 3}).schedule(), (&RandomProgram{Seed: 4}).schedule()) {
		t.Fatal("different seeds drew identical schedules")
	}
}

func TestRandomProgramRunsCleanWithoutFaults(t *testing.T) {
	for _, seed := range []int64{0, 1, 2, 3, 4, 5, 42, 99} {
		rt := cuda.NewRuntime(gpu.RTX2080Ti)
		p := &RandomProgram{Seed: seed, Tolerant: true}
		if errs := p.Run(rt); len(errs) != 0 {
			t.Fatalf("seed %d: clean run reported %d errors, first: %v", seed, len(errs), errs[0])
		}
	}
}

func TestRandomProgramTolerantSurvivesFaults(t *testing.T) {
	rt := cuda.NewRuntime(gpu.RTX2080Ti)
	plan := faultinject.New()
	plan.FailNth(faultinject.Malloc, 1)
	plan.FailNth(faultinject.Memcpy, 1)
	plan.FailLaunchNth(1, 0)
	rt.ArmFaults(plan)
	p := &RandomProgram{Seed: 11, Tolerant: true}
	errs := p.Run(rt)
	if len(errs) < 2 {
		t.Fatalf("tolerant run under 3 injected faults collected %d errors, want >= 2", len(errs))
	}
	for _, err := range errs {
		var ce *cuda.Error
		if !errors.As(err, &ce) {
			t.Fatalf("collected error is not a *cuda.Error: %v", err)
		}
	}
}

func TestRandomProgramIntolerantStopsAtFirstError(t *testing.T) {
	rt := cuda.NewRuntime(gpu.RTX2080Ti)
	plan := faultinject.New()
	plan.FailNth(faultinject.Malloc, 1)
	rt.ArmFaults(plan)
	p := &RandomProgram{Seed: 11}
	errs := p.Run(rt)
	if len(errs) != 1 {
		t.Fatalf("intolerant run returned %d errors, want exactly 1", len(errs))
	}
	var ce *cuda.Error
	if !errors.As(errs[0], &ce) || ce.Code != cuda.ErrOOM {
		t.Fatalf("first error = %v, want injected OOM", errs[0])
	}
}
