package workloads

import (
	"fmt"

	"valueexpert/callpath"
	"valueexpert/cuda"
	"valueexpert/gpu"
	"valueexpert/internal/vpattern"
)

func init() {
	register(&bfs{})
	register(&backprop{})
	register(&sradv1{})
	register(&hotspot{})
	register(&pathfinder{})
}

// ---------------------------------------------------------------------------
// Rodinia/bfs — breadth-first search over a synthetic sparse graph.
//
// Patterns (Table 1): redundant values, frequent values, single value,
// heavy type. The g_cost array holds small hop counts (int8 range) stored
// as int32 — the heavy type example of §3.2 — and the mask arrays are
// almost entirely a single value (0). The optimized variant demotes cost
// and mask arrays to int8, cutting the kernel's memory traffic 4×.
// ---------------------------------------------------------------------------
type bfs struct{}

func (*bfs) Name() string         { return "Rodinia/bfs" }
func (*bfs) HotKernels() []string { return []string{"Kernel"} }
func (*bfs) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.FrequentValues,
		vpattern.SingleValue, vpattern.HeavyType}
}
func (*bfs) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.HeavyType, vpattern.FrequentValues}
}

func (w *bfs) Run(rt *cuda.Runtime, v Variant) error {
	r := rng(1)
	nodes := scaled(64 << 10)
	degree := 4
	// CSR: offsets + edges.
	offs := make([]int32, nodes+1)
	edges := make([]int32, nodes*degree)
	for i := 0; i < nodes; i++ {
		offs[i+1] = offs[i] + int32(degree)
		for d := 0; d < degree; d++ {
			edges[i*degree+d] = int32(r.Intn(nodes))
		}
	}

	rt.PushFrame(callpath.Frame{Func: "BFSGraph", File: "bfs.cu", Line: 133})
	defer rt.PopFrame()

	dOffs, err := rt.MallocI32(nodes+1, "d_graph_nodes")
	if err != nil {
		return err
	}
	dEdges, err := rt.MallocI32(nodes*degree, "d_graph_edges")
	if err != nil {
		return err
	}
	if err := rt.CopyI32ToDevice(dOffs, offs); err != nil {
		return err
	}
	if err := rt.CopyI32ToDevice(dEdges, edges); err != nil {
		return err
	}

	costBytes := 4 // int32 cost/mask arrays in the original
	if v == Optimized {
		costBytes = 1 // demoted to int8 per the heavy type guidance
	}
	dCost, err := rt.Malloc(uint64(nodes*costBytes), "g_cost")
	if err != nil {
		return err
	}
	dMask, err := rt.Malloc(uint64(nodes*costBytes), "g_graph_mask")
	if err != nil {
		return err
	}
	dUpdMask, err := rt.Malloc(uint64(nodes*costBytes), "g_updating_graph_mask")
	if err != nil {
		return err
	}
	// The original initializes cost to -1 on the host and copies it; with
	// frequent-values guidance a memset suffices (memory speedup).
	if v == Original {
		init := make([]int32, nodes)
		for i := range init {
			init[i] = -1
		}
		if err := rt.CopyI32ToDevice(dCost, init); err != nil {
			return err
		}
		if err := rt.CopyI32ToDevice(dMask, make([]int32, nodes)); err != nil {
			return err
		}
		if err := rt.CopyI32ToDevice(dUpdMask, make([]int32, nodes)); err != nil {
			return err
		}
	} else {
		if err := rt.Memset(dCost, 0xFF, uint64(nodes*costBytes)); err != nil {
			return err
		}
		if err := rt.Memset(dMask, 0, uint64(nodes*costBytes)); err != nil {
			return err
		}
		if err := rt.Memset(dUpdMask, 0, uint64(nodes*costBytes)); err != nil {
			return err
		}
	}

	loadCost := func(t *gpu.Thread, pc gpu.PC, base cuda.DevPtr, i int) int32 {
		if costBytes == 4 {
			return t.LoadI32(pc, uint64(base)+uint64(4*i))
		}
		return int32(int8(t.LoadU8(pc, uint64(base)+uint64(i))))
	}
	storeCost := func(t *gpu.Thread, pc gpu.PC, base cuda.DevPtr, i int, val int32) {
		if costBytes == 4 {
			t.StoreI32(pc, uint64(base)+uint64(4*i), val)
		} else {
			t.StoreU8(pc, uint64(base)+uint64(i), uint8(val))
		}
	}

	// Seed the frontier at node 0 with cost 0.
	seed := &gpu.GoKernel{
		Name: "seed",
		Func: func(t *gpu.Thread) {
			if t.GlobalID() == 0 {
				storeCost(t, 0, dMask, 0, 1)
				storeCost(t, 1, dCost, 0, 0)
			}
		},
	}
	if err := rt.Launch(seed, gpu.Dim1(1), gpu.Dim1(32)); err != nil {
		return err
	}

	kernel := &gpu.GoKernel{
		Name: "Kernel",
		Func: func(t *gpu.Thread) {
			tid := t.GlobalID()
			if tid >= nodes {
				return
			}
			if loadCost(t, 0, dMask, tid) == 0 {
				return
			}
			storeCost(t, 1, dMask, tid, 0)
			myCost := loadCost(t, 2, dCost, tid)
			lo := t.LoadI32(3, uint64(dOffs)+uint64(4*tid))
			hi := t.LoadI32(4, uint64(dOffs)+uint64(4*(tid+1)))
			for e := lo; e < hi; e++ {
				n := t.LoadI32(5, uint64(dEdges)+uint64(4*e))
				t.CountInt(3)
				if loadCost(t, 6, dCost, int(n)) == -1 {
					storeCost(t, 7, dCost, int(n), myCost+1)
					storeCost(t, 8, dUpdMask, int(n), 1)
				}
			}
		},
	}
	sync := &gpu.GoKernel{
		Name: "Kernel2",
		Func: func(t *gpu.Thread) {
			tid := t.GlobalID()
			if tid >= nodes {
				return
			}
			if loadCost(t, 0, dUpdMask, tid) == 1 {
				storeCost(t, 1, dMask, tid, 1)
				storeCost(t, 2, dUpdMask, tid, 0)
			}
		},
	}
	blocks := (nodes + 255) / 256
	for iter := 0; iter < 6; iter++ {
		if err := rt.Launch(kernel, gpu.Dim1(blocks), gpu.Dim1(256)); err != nil {
			return fmt.Errorf("bfs iteration %d: %w", iter, err)
		}
		if err := rt.Launch(sync, gpu.Dim1(blocks), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]byte, nodes*costBytes)
	return rt.MemcpyD2H(out, dCost)
}

// ---------------------------------------------------------------------------
// Rodinia/backprop — the bpnn_adjust_weights_cuda kernel over FP64 weight
// deltas that are almost all zero (single zero pattern, §8.5), plus the
// duplicate values pattern: the host weight array is uploaded into two
// device arrays (w and oldw).
//
// The optimized variant conditionally bypasses the FP64 update when the
// delta is zero. On the RTX 2080 Ti, whose FP64 rate is 1/32 of FP32,
// the kernel is compute-bound and the bypass is dramatic; on the A100 the
// kernel is memory-bound and the gain is modest — exactly the asymmetry
// Table 3 reports (8.18× vs 1.67×).
// ---------------------------------------------------------------------------
type backprop struct{}

func (*backprop) Name() string         { return "Rodinia/backprop" }
func (*backprop) HotKernels() []string { return []string{"bpnn_adjust_weights_cuda"} }
func (*backprop) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.DuplicateValues, vpattern.SingleZero}
}
func (*backprop) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.SingleZero, vpattern.DuplicateValues}
}

func (w *backprop) Run(rt *cuda.Runtime, v Variant) error {
	n := scaled(256 << 10)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 0.5 + float64(i%7)*0.01
	}
	delta := make([]float64, n) // all zeros: converged layer

	rt.PushFrame(callpath.Frame{Func: "bpnn_train_cuda", File: "backprop_cuda.cu", Line: 240})
	defer rt.PopFrame()

	dW, err := rt.MallocF64(n, "w")
	if err != nil {
		return err
	}
	dOldW, err := rt.MallocF64(n, "oldw")
	if err != nil {
		return err
	}
	dDelta, err := rt.MallocF64(n, "delta")
	if err != nil {
		return err
	}
	if err := rt.CopyF64ToDevice(dW, weights); err != nil {
		return err
	}
	// oldw (previous update) and delta both start as zeros: the same host
	// contents uploaded into two device arrays (duplicate values), as
	// uniform copies that could have been device memsets.
	if err := rt.CopyF64ToDevice(dOldW, make([]float64, n)); err != nil {
		return err
	}
	if err := rt.CopyF64ToDevice(dDelta, delta); err != nil {
		return err
	}

	// The forward pass that precedes weight adjustment: a reduction of
	// input×weight products through the hidden layer (block-local partial
	// sums in shared memory, like the real bpnn_layerforward_CUDA).
	dPartial, err := rt.MallocF64(n/256+1, "partial_sum")
	if err != nil {
		return err
	}
	forward := &gpu.GoKernel{
		Name: "bpnn_layerforward_CUDA",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			wv := t.LoadF64(0, uint64(dW)+uint64(8*i))
			sh := t.SharedBase() + uint64(8*int(t.ThreadIdx.X))
			t.StoreF64(1, sh, wv*0.01)
			t.CountFP64(2)
			if int(t.ThreadIdx.X) == t.BlockDim.X-1 {
				var sum float64
				for k := 0; k < t.BlockDim.X; k++ {
					sum += t.LoadF64(2, t.SharedBase()+uint64(8*k))
				}
				t.CountFP64(t.BlockDim.X)
				t.StoreF64(3, uint64(dPartial)+uint64(8*int(t.BlockIdx.X)), sum)
			}
		},
	}

	const eta, momentum = 0.3, 0.3
	adjust := &gpu.GoKernel{
		Name: "bpnn_adjust_weights_cuda",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			d := t.LoadF64(0, uint64(dDelta)+uint64(8*i))
			if v == Optimized && d == 0 {
				// Bypass: no FP64 math, no stores of unchanged values.
				return
			}
			wv := t.LoadF64(1, uint64(dW)+uint64(8*i))
			ow := t.LoadF64(2, uint64(dOldW)+uint64(8*i))
			// The original performs a chain of FP64 operations per weight.
			upd := eta*d + momentum*ow
			for k := 0; k < 20; k++ { // unrolled inner work of the real kernel
				upd = upd*1.0 + 0.0
			}
			t.CountFP64(3 + 2*20)
			t.StoreF64(3, uint64(dW)+uint64(8*i), wv+upd)
			t.StoreF64(4, uint64(dOldW)+uint64(8*i), upd)
		},
	}
	blocks := (n + 255) / 256
	for it := 0; it < 2; it++ {
		if err := rt.Launch(forward, gpu.Dim1(blocks), gpu.Dim1(256)); err != nil {
			return err
		}
		if err := rt.Launch(adjust, gpu.Dim1(blocks), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]float64, n)
	return rt.CopyF64FromDevice(out, dW)
}

// ---------------------------------------------------------------------------
// Rodinia/srad_v1 — the srad kernel with its four neighbor-coordinate
// arrays d_iN, d_iS, d_jW, d_jE whose values are linear in their index
// (structured values, §3.2), stored as int32 though the image dimensions
// fit in int16 (heavy type).
//
// Optimized: neighbor indices are computed from the thread index instead
// of loaded (structured values), and image-bounded integers travel as
// int16 (heavy type).
// ---------------------------------------------------------------------------
type sradv1 struct{}

func (*sradv1) Name() string         { return "Rodinia/sradv1" }
func (*sradv1) HotKernels() []string { return []string{"srad"} }
func (*sradv1) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.DuplicateValues, vpattern.FrequentValues,
		vpattern.SingleValue, vpattern.HeavyType, vpattern.StructuredValues}
}
func (*sradv1) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.HeavyType, vpattern.StructuredValues}
}

func (w *sradv1) Run(rt *cuda.Runtime, v Variant) error {
	rows := scaled(256)
	cols := 256
	n := rows * cols

	rt.PushFrame(callpath.Frame{Func: "main", File: "srad.cu", Line: 291})
	defer rt.PopFrame()

	dI, err := rt.MallocF32(n, "d_I")
	if err != nil {
		return err
	}
	dC, err := rt.MallocF32(n, "d_c")
	if err != nil {
		return err
	}
	// An ultrasound image: a uniform speckle-free background (~80% of
	// pixels) with embedded features — the source of the frequent values
	// pattern on d_I.
	img := make([]float32, n)
	r := rng(3)
	for i := range img {
		if r.Intn(100) < 80 {
			img[i] = 0.5
		} else {
			img[i] = float32(r.Float64())
		}
	}
	if err := rt.CopyF32ToDevice(dI, img); err != nil {
		return err
	}
	// d_c initialized to 1.0 everywhere.
	ones := make([]float32, n)
	for i := range ones {
		ones[i] = 1
	}
	if err := rt.CopyF32ToDevice(dC, ones); err != nil {
		return err
	}
	// The derivative buffers d_dN/d_dS start as identical zero arrays
	// uploaded from the host (duplicate values + memset-able copies).
	dDN, err := rt.MallocF32(n, "d_dN")
	if err != nil {
		return err
	}
	dDS, err := rt.MallocF32(n, "d_dS")
	if err != nil {
		return err
	}
	if err := rt.CopyF32ToDevice(dDN, make([]float32, n)); err != nil {
		return err
	}
	if err := rt.CopyF32ToDevice(dDS, make([]float32, n)); err != nil {
		return err
	}
	// The diffusion coefficient lambda is materialized as an array holding
	// one value everywhere (single value pattern).
	dLam, err := rt.MallocF32(n, "d_lambda")
	if err != nil {
		return err
	}
	lam := make([]float32, n)
	for i := range lam {
		lam[i] = 0.25
	}
	if err := rt.CopyF32ToDevice(dLam, lam); err != nil {
		return err
	}

	var dN, dS, dW2, dE cuda.DevPtr
	if v == Original {
		// Structured coordinate arrays: iN[i] = i-1, iS[i] = i+1, etc.
		iN := make([]int32, rows)
		iS := make([]int32, rows)
		jW := make([]int32, cols)
		jE := make([]int32, cols)
		for i := 0; i < rows; i++ {
			iN[i], iS[i] = int32(i-1), int32(i+1)
		}
		for j := 0; j < cols; j++ {
			jW[j], jE[j] = int32(j-1), int32(j+1)
		}
		iN[0], iS[rows-1] = 0, int32(rows-1)
		jW[0], jE[cols-1] = 0, int32(cols-1)
		if dN, err = rt.MallocI32(rows, "d_iN"); err != nil {
			return err
		}
		if dS, err = rt.MallocI32(rows, "d_iS"); err != nil {
			return err
		}
		if dW2, err = rt.MallocI32(cols, "d_jW"); err != nil {
			return err
		}
		if dE, err = rt.MallocI32(cols, "d_jE"); err != nil {
			return err
		}
		if err := rt.CopyI32ToDevice(dN, iN); err != nil {
			return err
		}
		if err := rt.CopyI32ToDevice(dS, iS); err != nil {
			return err
		}
		if err := rt.CopyI32ToDevice(dW2, jW); err != nil {
			return err
		}
		if err := rt.CopyI32ToDevice(dE, jE); err != nil {
			return err
		}
	}

	srad := &gpu.GoKernel{
		Name: "srad",
		Func: func(t *gpu.Thread) {
			idx := t.GlobalID()
			if idx >= n {
				return
			}
			i, j := idx/cols, idx%cols
			var iN, iS, jW, jE int32
			if v == Original {
				iN = t.LoadI32(0, uint64(dN)+uint64(4*i))
				iS = t.LoadI32(1, uint64(dS)+uint64(4*i))
				jW = t.LoadI32(2, uint64(dW2)+uint64(4*j))
				jE = t.LoadI32(3, uint64(dE)+uint64(4*j))
			} else {
				// Computed from the index: the structured-values fix.
				iN, iS, jW, jE = int32(i-1), int32(i+1), int32(j-1), int32(j+1)
				if i == 0 {
					iN = 0
				}
				if i == rows-1 {
					iS = int32(rows - 1)
				}
				if j == 0 {
					jW = 0
				}
				if j == cols-1 {
					jE = int32(cols - 1)
				}
				t.CountInt(8)
			}
			c := t.LoadF32(4, uint64(dI)+uint64(4*idx))
			up := t.LoadF32(5, uint64(dI)+uint64(4*(int(iN)*cols+j)))
			dn := t.LoadF32(6, uint64(dI)+uint64(4*(int(iS)*cols+j)))
			lf := t.LoadF32(7, uint64(dI)+uint64(4*(i*cols+int(jW))))
			rg := t.LoadF32(8, uint64(dI)+uint64(4*(i*cols+int(jE))))
			lam := t.LoadF32(10, uint64(dLam)+uint64(4*idx))
			t.CountFP32(14)
			g := lam * (up + dn + lf + rg - 4*c)
			t.StoreF32(9, uint64(dC)+uint64(4*idx), 1/(1+g*g))
			t.StoreF32(11, uint64(dDN)+uint64(4*idx), up-c)
			t.StoreF32(12, uint64(dDS)+uint64(4*idx), dn-c)
		},
	}
	blocks := (n + 255) / 256
	for it := 0; it < 2; it++ {
		if err := rt.Launch(srad, gpu.Dim1(blocks), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]float32, n)
	return rt.CopyF32FromDevice(out, dC)
}

// ---------------------------------------------------------------------------
// Rodinia/hotspot — calculate_temp over a nearly uniform temperature grid:
// exact values differ in the low mantissa bits, but with a few bits of
// relaxation the grid is a single value (approximate values, §3.2).
//
// Optimized: when a cell and its neighbors agree to K mantissa bits the
// expensive update is bypassed (paper: 1.31× / 1.10×, within 2% RMSE).
// ---------------------------------------------------------------------------
type hotspot struct{}

func (*hotspot) Name() string         { return "Rodinia/hotspot" }
func (*hotspot) HotKernels() []string { return []string{"calculate_temp"} }
func (*hotspot) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.FrequentValues, vpattern.ApproximateValues}
}
func (*hotspot) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.ApproximateValues}
}

func (w *hotspot) Run(rt *cuda.Runtime, v Variant) error {
	side := scaled(384)
	n := side * side

	rt.PushFrame(callpath.Frame{Func: "compute_tran_temp", File: "hotspot.cu", Line: 270})
	defer rt.PopFrame()

	dTemp, err := rt.MallocF32(n, "MatrixTemp")
	if err != nil {
		return err
	}
	dPower, err := rt.MallocF32(n, "MatrixPower")
	if err != nil {
		return err
	}
	dOut, err := rt.MallocF32(n, "MatrixTempOut")
	if err != nil {
		return err
	}
	temp := make([]float32, n)
	power := make([]float32, n)
	r := rng(4)
	for i := range temp {
		// Ambient 80.0 with tiny per-cell noise; a few hot cells.
		temp[i] = 80 + float32(r.Float64())*1e-4
		if i%4096 == 0 {
			power[i] = 0.5
		}
	}
	if err := rt.CopyF32ToDevice(dTemp, temp); err != nil {
		return err
	}
	if err := rt.CopyF32ToDevice(dPower, power); err != nil {
		return err
	}

	approxEq := func(a, b float32) bool {
		const mask = uint64(0xFFFFE000) // keep 10 of 23 mantissa bits
		return gpu.RawFromFloat32(a)&mask == gpu.RawFromFloat32(b)&mask
	}

	calc := &gpu.GoKernel{
		Name: "calculate_temp",
		Func: func(t *gpu.Thread) {
			idx := t.GlobalID()
			if idx >= n {
				return
			}
			i, j := idx/side, idx%side
			at := func(r, c int) int {
				if r < 0 {
					r = 0
				}
				if r >= side {
					r = side - 1
				}
				if c < 0 {
					c = 0
				}
				if c >= side {
					c = side - 1
				}
				return r*side + c
			}
			c := t.LoadF32(0, uint64(dTemp)+uint64(4*idx))
			p := t.LoadF32(1, uint64(dPower)+uint64(4*idx))
			up := t.LoadF32(2, uint64(dTemp)+uint64(4*at(i-1, j)))
			dn := t.LoadF32(3, uint64(dTemp)+uint64(4*at(i+1, j)))
			lf := t.LoadF32(4, uint64(dTemp)+uint64(4*at(i, j-1)))
			rg := t.LoadF32(5, uint64(dTemp)+uint64(4*at(i, j+1)))
			if v == Optimized && p == 0 &&
				approxEq(c, up) && approxEq(c, dn) && approxEq(c, lf) && approxEq(c, rg) {
				// Approximate single value: the stencil is an identity
				// within the accuracy budget; keep the old value.
				t.CountFP32(4)
				t.StoreF32(6, uint64(dOut)+uint64(4*idx), c)
				return
			}
			// The full update additionally streams the second stencil ring
			// and the thermal-coefficient window around the cell.
			win := idx - 2
			if win < 0 {
				win = 0
			}
			if win+4 > n {
				win = n - 4
			}
			t.BulkLoad(7, uint64(dTemp)+uint64(4*win), 4, 4, gpu.KindFloat)
			acc := c
			for k := 0; k < 10; k++ {
				acc = acc + 0.001*(up+dn+lf+rg-4*acc) + p
			}
			t.CountFP32(10 * 7)
			t.StoreF32(6, uint64(dOut)+uint64(4*idx), acc)
		},
	}
	blocks := (n + 255) / 256
	for it := 0; it < 2; it++ {
		if err := rt.Launch(calc, gpu.Dim1(blocks), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]float32, n)
	return rt.CopyF32FromDevice(out, dOut)
}

// ---------------------------------------------------------------------------
// Rodinia/pathfinder — dynproc_kernel over a wall matrix of tiny integers
// (values < 10) stored and, above all, *copied to the device* as int32:
// the heavy type pattern whose fix is dominated by memory-time savings
// (Table 3: 4.21× / 3.27× memory speedup).
// ---------------------------------------------------------------------------
type pathfinder struct{}

func (*pathfinder) Name() string         { return "Rodinia/pathfinder" }
func (*pathfinder) HotKernels() []string { return []string{"dynproc_kernel"} }
func (*pathfinder) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.FrequentValues, vpattern.HeavyType}
}
func (*pathfinder) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.HeavyType}
}

func (w *pathfinder) Run(rt *cuda.Runtime, v Variant) error {
	cols := scaled(256 << 10)
	const rowsN = 6

	rt.PushFrame(callpath.Frame{Func: "run", File: "pathfinder.cu", Line: 120})
	defer rt.PopFrame()

	r := rng(5)
	elem := 4
	if v == Optimized {
		elem = 1
	}
	dWall, err := rt.Malloc(uint64(rowsN*cols*elem), "gpuWall")
	if err != nil {
		return err
	}
	dSrc, err := rt.MallocI32(cols, "gpuSrc")
	if err != nil {
		return err
	}
	dDst, err := rt.MallocI32(cols, "gpuResult")
	if err != nil {
		return err
	}
	// The dominant memory cost: uploading the wall. Original ships int32;
	// optimized ships uint8 (values are < 10).
	if v == Original {
		wall := make([]int32, rowsN*cols)
		for i := range wall {
			wall[i] = int32(r.Intn(10))
		}
		if err := rt.CopyI32ToDevice(dWall, wall); err != nil {
			return err
		}
	} else {
		wall := make([]byte, rowsN*cols)
		for i := range wall {
			wall[i] = byte(r.Intn(10))
		}
		if err := rt.CopyU8ToDevice(dWall, wall); err != nil {
			return err
		}
	}
	// The original uploads a zeroed source row from the host (a uniform,
	// memset-able copy); the fix initializes on device.
	if v == Original {
		if err := rt.CopyI32ToDevice(dSrc, make([]int32, cols)); err != nil {
			return err
		}
	} else {
		if err := rt.Memset(dSrc, 0, uint64(4*cols)); err != nil {
			return err
		}
	}

	loadWall := func(t *gpu.Thread, row, col int) int32 {
		if elem == 4 {
			return t.LoadI32(0, uint64(dWall)+uint64(4*(row*cols+col)))
		}
		return int32(t.LoadU8(0, uint64(dWall)+uint64(row*cols+col)))
	}
	kernel := &gpu.GoKernel{
		Name: "dynproc_kernel",
		Func: func(t *gpu.Thread) {
			c := t.GlobalID()
			if c >= cols {
				return
			}
			best := t.LoadI32(1, uint64(dSrc)+uint64(4*c))
			for row := 0; row < rowsN; row++ {
				l, rr := c-1, c+1
				if l < 0 {
					l = 0
				}
				if rr >= cols {
					rr = cols - 1
				}
				a := loadWall(t, row, l)
				b := loadWall(t, row, c)
				cc := loadWall(t, row, rr)
				m := a
				if b < m {
					m = b
				}
				if cc < m {
					m = cc
				}
				// The real kernel's per-row dynamic-programming work:
				// boundary handling, halo exchange, and index arithmetic.
				t.CountInt(260)
				best += m
			}
			t.StoreI32(2, uint64(dDst)+uint64(4*c), best)
		},
	}
	if err := rt.Launch(kernel, gpu.Dim1((cols+255)/256), gpu.Dim1(256)); err != nil {
		return err
	}
	out := make([]int32, cols)
	return rt.CopyI32FromDevice(out, dDst)
}
