package workloads

import (
	"valueexpert/callpath"
	"valueexpert/cuda"
	"valueexpert/gpu"
	"valueexpert/internal/vpattern"
)

func init() {
	register(&cfd{})
	register(&huffman{})
	register(&lavaMD{})
	register(&hotspot3D{})
	register(&streamcluster{})
}

// ---------------------------------------------------------------------------
// Rodinia/cfd — cuda_compute_flux reads the `variables` array whose values
// cluster around a handful of free-stream constants during the first
// iterations (frequent values). The optimization applies conditional
// computation: when a cell's variables equal the free-stream value the
// flux contribution is the precomputed free-stream flux, bypassing the
// expensive per-face computation (paper §8.5: 8.28× / 6.05×).
// ---------------------------------------------------------------------------
type cfd struct{}

func (*cfd) Name() string         { return "Rodinia/cfd" }
func (*cfd) HotKernels() []string { return []string{"cuda_compute_flux"} }
func (*cfd) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.FrequentValues}
}
func (*cfd) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.FrequentValues, vpattern.RedundantValues}
}

func (w *cfd) Run(rt *cuda.Runtime, v Variant) error {
	nelr := scaled(64 << 10)
	const nnb = 8

	rt.PushFrame(callpath.Frame{Func: "main", File: "euler3d.cu", Line: 570})
	defer rt.PopFrame()

	dVars, err := rt.MallocF32(nelr*5, "variables")
	if err != nil {
		return err
	}
	dFluxes, err := rt.MallocF32(nelr*5, "fluxes")
	if err != nil {
		return err
	}
	dNb, err := rt.MallocI32(nelr*nnb, "elements_surrounding_elements")
	if err != nil {
		return err
	}

	// Free-stream initialization: every cell identical (frequent values).
	const freeStream = float32(1.4)
	vars := make([]float32, nelr*5)
	for i := range vars {
		vars[i] = freeStream
	}
	r := rng(6)
	// A thin shock layer of perturbed cells (~2%).
	for i := 0; i < nelr/50; i++ {
		c := r.Intn(nelr)
		for k := 0; k < 5; k++ {
			vars[c*5+k] = freeStream + float32(r.Float64())
		}
	}
	if err := rt.CopyF32ToDevice(dVars, vars); err != nil {
		return err
	}
	nb := make([]int32, nelr*nnb)
	for i := range nb {
		nb[i] = int32(r.Intn(nelr))
	}
	if err := rt.CopyI32ToDevice(dNb, nb); err != nil {
		return err
	}

	flux := &gpu.GoKernel{
		Name: "cuda_compute_flux",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= nelr {
				return
			}
			density := t.LoadF32(0, uint64(dVars)+uint64(4*(i*5)))
			if v == Optimized && density == freeStream {
				// Conditional computation: free-stream cells contribute the
				// precomputed constant flux; skip the neighbor loop.
				t.CountFP32(2)
				t.StoreF32(1, uint64(dFluxes)+uint64(4*(i*5)), 0)
				return
			}
			var acc float32
			for j := 0; j < nnb; j++ {
				nbi := t.LoadI32(2, uint64(dNb)+uint64(4*(i*nnb+j)))
				// Stream the neighbor's five conservative variables and
				// fold them into the flux factorization.
				t.BulkLoad(3, uint64(dVars)+uint64(4*(int(nbi)*5)), 5, 4, gpu.KindFloat)
				nv := t.LoadF32(5, uint64(dVars)+uint64(4*(int(nbi)*5)))
				// Fold the neighbor's *residual* against the free stream:
				// fluxes vanish in uniform flow, so free-stream cells stay
				// exactly free-stream across time steps.
				for u := 0; u < 6; u++ {
					acc = acc*0.99 + (nv-freeStream)*0.01
				}
				t.CountFP32(72)
			}
			for k := 0; k < 5; k++ {
				t.StoreF32(4, uint64(dFluxes)+uint64(4*(i*5+k)), acc)
			}
		},
	}
	// The rest of the RK step, as in the real euler3d: per-cell step
	// factors and the time integration that folds fluxes back into the
	// conservative variables.
	dStep, err := rt.MallocF32(nelr, "step_factors")
	if err != nil {
		return err
	}
	stepFactor := &gpu.GoKernel{
		Name: "cuda_compute_step_factor",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= nelr {
				return
			}
			density := t.LoadF32(0, uint64(dVars)+uint64(4*(i*5)))
			t.CountFP32(6)
			t.StoreF32(1, uint64(dStep)+uint64(4*i), 0.5/(density+1))
		},
	}
	timeStep := &gpu.GoKernel{
		Name: "cuda_time_step",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= nelr {
				return
			}
			factor := t.LoadF32(0, uint64(dStep)+uint64(4*i))
			for k := 0; k < 5; k++ {
				old := t.LoadF32(1, uint64(dVars)+uint64(4*(i*5+k)))
				fl := t.LoadF32(2, uint64(dFluxes)+uint64(4*(i*5+k)))
				t.CountFP32(2)
				t.StoreF32(3, uint64(dVars)+uint64(4*(i*5+k)), old+factor*fl)
			}
		},
	}

	blocks := (nelr + 127) / 128
	for it := 0; it < 2; it++ {
		if err := rt.Launch(stepFactor, gpu.Dim1(blocks), gpu.Dim1(128)); err != nil {
			return err
		}
		if err := rt.Launch(flux, gpu.Dim1(blocks), gpu.Dim1(128)); err != nil {
			return err
		}
		if err := rt.Launch(timeStep, gpu.Dim1(blocks), gpu.Dim1(128)); err != nil {
			return err
		}
	}
	out := make([]float32, nelr*5)
	return rt.CopyF32FromDevice(out, dFluxes)
}

// ---------------------------------------------------------------------------
// Rodinia/huffman — histo_kernel builds a symbol histogram where most
// bins receive zero increments (frequent values, §3.2: "most values
// written to the array histo are zeros"). The optimization bypasses
// identity updates (adding zero), saving stores and atomics.
// ---------------------------------------------------------------------------
type huffman struct{}

func (*huffman) Name() string         { return "Rodinia/huffman" }
func (*huffman) HotKernels() []string { return []string{"histo_kernel"} }
func (*huffman) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.DuplicateValues,
		vpattern.SingleValue, vpattern.HeavyType, vpattern.FrequentValues}
}
func (*huffman) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.FrequentValues}
}

func (w *huffman) Run(rt *cuda.Runtime, v Variant) error {
	nSymbols := scaled(256 << 10)
	const bins = 256

	rt.PushFrame(callpath.Frame{Func: "runVLCTest", File: "main_test_cu.cu", Line: 140})
	defer rt.PopFrame()

	dData, err := rt.MallocU8(nSymbols, "sourceData")
	if err != nil {
		return err
	}
	dHisto, err := rt.MallocI32(bins, "histo")
	if err != nil {
		return err
	}
	dCodewords, err := rt.MallocI32(bins, "codewords")
	if err != nil {
		return err
	}
	dCodewordLens, err := rt.MallocI32(bins, "codewordlens")
	if err != nil {
		return err
	}
	// Heavily skewed source: two symbols dominate, most bins stay zero.
	r := rng(7)
	data := make([]byte, nSymbols)
	for i := range data {
		if r.Intn(100) < 95 {
			data[i] = byte(r.Intn(2))
		} else {
			data[i] = byte(r.Intn(16))
		}
	}
	if err := rt.CopyU8ToDevice(dData, data); err != nil {
		return err
	}
	if err := rt.Memset(dHisto, 0, 4*bins); err != nil {
		return err
	}
	// Duplicate values: codeword tables initialized identically.
	zeros := make([]int32, bins)
	if err := rt.CopyI32ToDevice(dCodewords, zeros); err != nil {
		return err
	}
	if err := rt.CopyI32ToDevice(dCodewordLens, zeros); err != nil {
		return err
	}

	// Per-block sub-histograms to model the shared-memory reduction: each
	// block accumulates privately and then adds its partial counts to the
	// global histogram — most partial counts are zero.
	const blockSize = 256
	blocks := (nSymbols + blockSize - 1) / blockSize
	histo := &gpu.GoKernel{
		Name: "histo_kernel",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= nSymbols {
				return
			}
			// The first thread of each block zeroes the block-private tally.
			if t.ThreadIdx.X == 0 {
				for b := 0; b < bins; b++ {
					t.StoreU32(6, t.SharedBase()+uint64(4*b), 0)
				}
			}
			sym := t.LoadU8(0, uint64(dData)+uint64(i))
			// The VLC table lookup: codewords are all zero for this input
			// (single zero; int32 values demotable — heavy type).
			cw := t.LoadU32(7, uint64(dCodewords)+uint64(4*int(sym)))
			_ = cw
			// Private tally in shared memory.
			sh := t.SharedBase() + uint64(4*int(sym))
			cur := t.LoadU32(1, sh)
			t.StoreU32(2, sh, cur+1)
			t.CountInt(2)
			// The last thread of each block flushes the partial histogram.
			if int(t.ThreadIdx.X) == t.BlockDim.X-1 {
				for b := 0; b < bins; b++ {
					part := t.LoadU32(3, t.SharedBase()+uint64(4*b))
					if v == Optimized && part == 0 {
						// Bypass identity updates on zero partial counts.
						t.CountInt(1)
						continue
					}
					g := t.LoadU32(4, uint64(dHisto)+uint64(4*b))
					t.StoreU32(5, uint64(dHisto)+uint64(4*b), g+part)
					t.CountInt(2)
				}
			}
		},
	}
	if err := rt.Launch(histo, gpu.Dim1(blocks), gpu.Dim1(blockSize)); err != nil {
		return err
	}
	out := make([]int32, bins)
	return rt.CopyI32FromDevice(out, dHisto)
}

// ---------------------------------------------------------------------------
// Rodinia/lavaMD — kernel_gpu_cuda consumes the rA array of doubles drawn
// from ten distinct values {0.1..1.0} (heavy type, §8.6). The optimized
// variant ships rA to the GPU as uint8 dictionary indices (8× smaller
// transfer) and decodes on device — memory time improves ~1.5×, kernel
// time pays a small decode cost (paper: 0.99× kernel, 1.49× memory).
// ---------------------------------------------------------------------------
type lavaMD struct{}

func (*lavaMD) Name() string         { return "Rodinia/lavaMD" }
func (*lavaMD) HotKernels() []string { return []string{"kernel_gpu_cuda"} }
func (*lavaMD) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues, vpattern.HeavyType}
}
func (*lavaMD) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.HeavyType}
}

func (w *lavaMD) Run(rt *cuda.Runtime, v Variant) error {
	n := scaled(512 << 10)

	rt.PushFrame(callpath.Frame{Func: "main", File: "lavaMD/main.c", Line: 386})
	defer rt.PopFrame()

	dict := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	r := rng(8)

	// Particle positions travel to the GPU in both variants; only the rA
	// charges are dictionary-compressible.
	dPos, err := rt.MallocF64(n, "d_box_pos")
	if err != nil {
		return err
	}
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = r.Float64() * 10
	}
	if err := rt.CopyF64ToDevice(dPos, pos); err != nil {
		return err
	}

	var dRA cuda.DevPtr
	if v == Original {
		rA := make([]float64, n)
		for i := range rA {
			rA[i] = dict[r.Intn(10)]
		}
		if dRA, err = rt.MallocF64(n, "rA"); err != nil {
			return err
		}
		if err := rt.CopyF64ToDevice(dRA, rA); err != nil {
			return err
		}
	} else {
		idx := make([]byte, n)
		for i := range idx {
			idx[i] = byte(r.Intn(10))
		}
		if dRA, err = rt.MallocU8(n, "rA_idx"); err != nil {
			return err
		}
		if err := rt.CopyU8ToDevice(dRA, idx); err != nil {
			return err
		}
	}
	dOut, err := rt.MallocF64(n, "fA")
	if err != nil {
		return err
	}

	kernel := &gpu.GoKernel{
		Name: "kernel_gpu_cuda",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			var a float64
			if v == Original {
				a = t.LoadF64(0, uint64(dRA)+uint64(8*i))
			} else {
				k := t.LoadU8(0, uint64(dRA)+uint64(i))
				a = dict[int(k)%10]
				t.CountInt(2) // dictionary decode
			}
			// Per-particle force accumulation over the neighbor box.
			x := t.LoadF64(3, uint64(dPos)+uint64(8*i))
			acc := a
			for k := 0; k < 12; k++ {
				acc = acc*a + 0.5*x
			}
			t.CountFP64(36)
			t.StoreF64(1, uint64(dOut)+uint64(8*i), acc)
		},
	}
	// Two MD steps over unchanged particles: the second launch recomputes
	// and stores identical forces (redundant values).
	for it := 0; it < 2; it++ {
		if err := rt.Launch(kernel, gpu.Dim1((n+255)/256), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]float64, 1024)
	return rt.CopyF64FromDevice(out, dOut)
}

// ---------------------------------------------------------------------------
// Rodinia/hotspot3D — hotspotOpt1 over a 3-D grid whose tIn_d slab is a
// single value under mantissa relaxation (approximate values): bypassing
// the stencil on uniform regions halves the kernel (paper: 2.00×/1.99×,
// within 2% RMSE).
// ---------------------------------------------------------------------------
type hotspot3D struct{}

func (*hotspot3D) Name() string         { return "Rodinia/hotspot3D" }
func (*hotspot3D) HotKernels() []string { return []string{"hotspotOpt1"} }
func (*hotspot3D) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.ApproximateValues}
}
func (*hotspot3D) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.ApproximateValues}
}

func (w *hotspot3D) Run(rt *cuda.Runtime, v Variant) error {
	side := scaled(192)
	layers := 4
	n := side * side * layers

	rt.PushFrame(callpath.Frame{Func: "hotspot_opt", File: "3D.c", Line: 60})
	defer rt.PopFrame()

	dIn, err := rt.MallocF32(n, "tIn_d")
	if err != nil {
		return err
	}
	dOut, err := rt.MallocF32(n, "tOut_d")
	if err != nil {
		return err
	}
	dPow, err := rt.MallocF32(n, "pIn_d")
	if err != nil {
		return err
	}
	tin := make([]float32, n)
	pw := make([]float32, n)
	r := rng(9)
	for i := range tin {
		tin[i] = 75 + float32(r.Float64())*1e-4
	}
	for i := 0; i < n/2048; i++ {
		pw[r.Intn(n)] = 1
	}
	if err := rt.CopyF32ToDevice(dIn, tin); err != nil {
		return err
	}
	if err := rt.CopyF32ToDevice(dPow, pw); err != nil {
		return err
	}

	approxEq := func(a, b float32) bool {
		const mask = uint64(0xFFFFE000) // keep 10 of 23 mantissa bits
		return gpu.RawFromFloat32(a)&mask == gpu.RawFromFloat32(b)&mask
	}
	opt1 := &gpu.GoKernel{
		Name: "hotspotOpt1",
		Func: func(t *gpu.Thread) {
			idx := t.GlobalID()
			if idx >= n {
				return
			}
			z := idx / (side * side)
			rem := idx % (side * side)
			i, j := rem/side, rem%side
			at := func(z2, i2, j2 int) int {
				clamp := func(x, hi int) int {
					if x < 0 {
						return 0
					}
					if x >= hi {
						return hi - 1
					}
					return x
				}
				return clamp(z2, layers)*side*side + clamp(i2, side)*side + clamp(j2, side)
			}
			c := t.LoadF32(0, uint64(dIn)+uint64(4*idx))
			p := t.LoadF32(1, uint64(dPow)+uint64(4*idx))
			nb := [6]float32{
				t.LoadF32(2, uint64(dIn)+uint64(4*at(z, i-1, j))),
				t.LoadF32(3, uint64(dIn)+uint64(4*at(z, i+1, j))),
				t.LoadF32(4, uint64(dIn)+uint64(4*at(z, i, j-1))),
				t.LoadF32(5, uint64(dIn)+uint64(4*at(z, i, j+1))),
				t.LoadF32(6, uint64(dIn)+uint64(4*at(z-1, i, j))),
				t.LoadF32(7, uint64(dIn)+uint64(4*at(z+1, i, j))),
			}
			if v == Optimized && p == 0 {
				uniform := true
				for _, x := range nb {
					if !approxEq(c, x) {
						uniform = false
						break
					}
				}
				t.CountFP32(6)
				if uniform {
					t.StoreF32(8, uint64(dOut)+uint64(4*idx), c)
					return
				}
			}
			// The full update streams the extended 3-D stencil window.
			win := idx - 12
			if win < 0 {
				win = 0
			}
			if win+24 > n {
				win = n - 24
			}
			t.BulkLoad(9, uint64(dIn)+uint64(4*win), 24, 4, gpu.KindFloat)
			acc := c
			for k := 0; k < 8; k++ {
				acc = acc + 0.0005*(nb[0]+nb[1]+nb[2]+nb[3]+nb[4]+nb[5]-6*acc) + p
			}
			t.CountFP32(8 * 10)
			t.StoreF32(8, uint64(dOut)+uint64(4*idx), acc)
		},
	}
	blocks := (n + 255) / 256
	for it := 0; it < 2; it++ {
		if err := rt.Launch(opt1, gpu.Dim1(blocks), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]float32, 1024)
	return rt.CopyF32FromDevice(out, dOut)
}

// ---------------------------------------------------------------------------
// Rodinia/streamcluster — the paper's memory-time-only case (Table 3 has
// no kernel entry): each clustering iteration re-uploads coordinate and
// weight arrays even though they have not changed since the previous
// iteration (redundant values on H2D copies). The optimized variant
// uploads them once and only re-sends the small assignment buffer.
// Paper: 2.39× / 1.81× memory speedup.
// ---------------------------------------------------------------------------
type streamcluster struct{}

func (*streamcluster) Name() string         { return "Rodinia/streamcluster" }
func (*streamcluster) HotKernels() []string { return nil } // memory-only optimization
func (*streamcluster) ExpectedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues}
}
func (*streamcluster) OptimizedPatterns() []vpattern.Kind {
	return []vpattern.Kind{vpattern.RedundantValues}
}

func (w *streamcluster) Run(rt *cuda.Runtime, v Variant) error {
	points := scaled(256 << 10)
	const dims = 8
	const iters = 6

	rt.PushFrame(callpath.Frame{Func: "pgain", File: "streamcluster_cuda.cu", Line: 100})
	defer rt.PopFrame()

	coords := make([]float32, points*dims)
	weights := make([]float32, points)
	r := rng(10)
	for i := range coords {
		coords[i] = float32(r.Float64())
	}
	for i := range weights {
		weights[i] = 1
	}
	dCoord, err := rt.MallocF32(points*dims, "coord_d")
	if err != nil {
		return err
	}
	dWeight, err := rt.MallocF32(points, "weight_d")
	if err != nil {
		return err
	}
	dAssign, err := rt.MallocI32(points, "center_table_d")
	if err != nil {
		return err
	}
	dCost, err := rt.MallocF32(points, "cost_d")
	if err != nil {
		return err
	}

	kernel := &gpu.GoKernel{
		Name: "kernel_compute_cost",
		Func: func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= points/64 { // sparse compute: this app is copy-bound
				return
			}
			x := t.LoadF32(0, uint64(dCoord)+uint64(4*i*dims))
			wv := t.LoadF32(1, uint64(dWeight)+uint64(4*i))
			t.CountFP32(4)
			t.StoreF32(2, uint64(dCost)+uint64(4*i), x*wv)
		},
	}

	assign := make([]int32, points)
	for it := 0; it < iters; it++ {
		// The original re-uploads everything every pgain() call.
		if v == Original || it == 0 {
			if err := rt.CopyF32ToDevice(dCoord, coords); err != nil {
				return err
			}
			if err := rt.CopyF32ToDevice(dWeight, weights); err != nil {
				return err
			}
		}
		for i := range assign {
			assign[i] = int32(it)
		}
		if err := rt.CopyI32ToDevice(dAssign, assign); err != nil {
			return err
		}
		if err := rt.Launch(kernel, gpu.Dim1((points/64+255)/256), gpu.Dim1(256)); err != nil {
			return err
		}
	}
	out := make([]float32, points/64)
	return rt.CopyF32FromDevice(out, dCost)
}
