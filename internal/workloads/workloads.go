// Package workloads contains miniature, self-contained reproductions of
// the benchmarks and applications the paper evaluates (Table 1/3): the
// Rodinia suite plus Darknet, PyTorch models, Castro, BarraCUDA,
// QMCPACK, NAMD, and LAMMPS. Each reproduction runs on the simulated CUDA
// runtime and exhibits the same value patterns, for the same structural
// reasons, as the original application — and carries an Optimized variant
// applying the paper's fix (typically the "less than five lines of code
// changes" described in §7/§8).
//
// Because the real applications and their inputs are unavailable in this
// environment, inputs are synthesized with fixed seeds so the value
// behaviour (zeros where the original had zeros, small ranges where the
// original had small ranges) matches the paper's observations. DESIGN.md
// documents each substitution.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"valueexpert/cuda"
	"valueexpert/internal/vpattern"
)

// Variant selects the as-published code or the paper's optimized version.
type Variant int

// Variants.
const (
	Original Variant = iota
	Optimized
)

// String names the variant.
func (v Variant) String() string {
	if v == Optimized {
		return "optimized"
	}
	return "original"
}

// Workload is one reproducible application.
type Workload interface {
	// Name is the application name used in tables.
	Name() string
	// Run executes one measurement iteration on rt.
	Run(rt *cuda.Runtime, v Variant) error
	// HotKernels names the kernels whose execution time Table 3 reports;
	// empty means the optimization targets memory operations only.
	HotKernels() []string
	// ExpectedPatterns is the application's Table 1 row.
	ExpectedPatterns() []vpattern.Kind
	// OptimizedPattern names the pattern(s) the optimization exploits
	// (Table 4 rows).
	OptimizedPatterns() []vpattern.Kind
}

// registry holds all workloads in Table 1 order.
var registry []Workload

func register(w Workload) { registry = append(registry, w) }

// All returns every workload in Table 1 order.
func All() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	return out
}

// ByName finds a workload.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name() == name {
			return w, nil
		}
	}
	var names []string
	for _, w := range registry {
		names = append(names, w.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, names)
}

// rng returns a deterministic source per workload so value behaviour is
// reproducible run to run.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Scale shrinks problem sizes uniformly for fast tests; benchmarks use 1.
// It must be ≥ 1.
var Scale = 1

func scaled(n int) int {
	s := n / Scale
	if s < 32 {
		s = 32
	}
	return s
}
