package workloads

import (
	"os"
	"testing"

	"valueexpert/cuda"
	"valueexpert/gpu"
	"valueexpert/internal/core"
	"valueexpert/internal/vpattern"
)

func TestMain(m *testing.M) {
	// Shrink problem sizes for unit tests; benchmarks use full scale.
	Scale = 64
	os.Exit(m.Run())
}

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, w := range All() {
		if names[w.Name()] {
			t.Fatalf("duplicate workload %q", w.Name())
		}
		names[w.Name()] = true
	}
	// The 19 applications of Table 1.
	if len(names) != 19 {
		t.Fatalf("registry has %d workloads, want 19", len(names))
	}
	for _, want := range []string{
		"Rodinia/bfs", "Rodinia/backprop", "Rodinia/sradv1", "Rodinia/hotspot",
		"Rodinia/pathfinder", "Rodinia/cfd", "Rodinia/huffman", "Rodinia/lavaMD",
		"Rodinia/hotspot3D", "Rodinia/streamcluster", "Darknet", "QMCPACK",
		"Castro", "BarraCUDA", "PyTorch-Deepwave", "PyTorch-Bert",
		"PyTorch-Resnet50", "NAMD", "LAMMPS",
	} {
		if !names[want] {
			t.Fatalf("missing workload %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("Darknet")
	if err != nil || w.Name() != "Darknet" {
		t.Fatalf("ByName: %v, %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// Every workload must run cleanly in both variants on both devices.
func TestAllWorkloadsRunBothVariants(t *testing.T) {
	for _, w := range All() {
		for _, v := range []Variant{Original, Optimized} {
			for _, prof := range gpu.Profiles() {
				rt := cuda.NewRuntime(prof)
				if err := w.Run(rt, v); err != nil {
					t.Fatalf("%s (%s, %s): %v", w.Name(), v, prof.Name, err)
				}
				st := rt.Device().Stats()
				if st.KernelLaunches == 0 {
					t.Fatalf("%s (%s): no kernels launched", w.Name(), v)
				}
				if st.MemcpyCalls == 0 && st.MemsetCalls == 0 {
					t.Fatalf("%s (%s): no memory operations", w.Name(), v)
				}
			}
		}
	}
}

// Table 1: profiling the original variant must detect every pattern the
// paper reports for that application (extras are allowed — our miniatures
// sometimes expose more than the paper's table records).
func TestTable1ExpectedPatternsDetected(t *testing.T) {
	for _, w := range All() {
		rt := cuda.NewRuntime(gpu.RTX2080Ti)
		p := core.Attach(rt, core.Config{
			Coarse: true, Fine: true, Program: w.Name(),
		})
		if err := w.Run(rt, Original); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		got := p.Report().PatternSet()
		for _, k := range w.ExpectedPatterns() {
			if !got[k.String()] {
				t.Errorf("%s: pattern %q not detected (got %v)", w.Name(), k, got)
			}
		}
	}
}

// The optimization must target patterns the tool actually reports.
func TestOptimizedPatternsAreDetected(t *testing.T) {
	for _, w := range All() {
		expected := map[vpattern.Kind]bool{}
		for _, k := range w.ExpectedPatterns() {
			expected[k] = true
		}
		if len(w.OptimizedPatterns()) == 0 {
			t.Errorf("%s: no optimized patterns declared", w.Name())
		}
		for _, k := range w.OptimizedPatterns() {
			if !expected[k] {
				t.Errorf("%s: optimizes pattern %q not in its expected set", w.Name(), k)
			}
		}
	}
}

// Running the optimized variant must never do more device work than the
// original: kernel time and memory time may only shrink or stay flat
// (small tolerance for bookkeeping differences).
func TestOptimizedNeverSlower(t *testing.T) {
	for _, w := range All() {
		for _, prof := range gpu.Profiles() {
			times := func(v Variant) (kernel, memory float64) {
				rt := cuda.NewRuntime(prof)
				tc := cuda.NewTimeCollector()
				rt.SetInterceptor(tc)
				if err := w.Run(rt, v); err != nil {
					t.Fatalf("%s: %v", w.Name(), err)
				}
				var kt float64
				if hot := w.HotKernels(); len(hot) > 0 {
					for _, k := range hot {
						kt += float64(tc.KernelTime(k))
					}
				} else {
					kt = float64(tc.TotalKernelTime())
				}
				return kt, float64(tc.MemoryTime())
			}
			ok, om := times(Original)
			nk, nm := times(Optimized)
			if nk > ok*1.10 {
				t.Errorf("%s on %s: optimized kernel time %.0f > original %.0f",
					w.Name(), prof.Name, nk, ok)
			}
			if nm > om*1.10 {
				t.Errorf("%s on %s: optimized memory time %.0f > original %.0f",
					w.Name(), prof.Name, nm, om)
			}
		}
	}
}

func TestVariantString(t *testing.T) {
	if Original.String() != "original" || Optimized.String() != "optimized" {
		t.Fatal("Variant.String")
	}
}

func TestScaledFloor(t *testing.T) {
	if scaled(1) < 32 {
		t.Fatal("scaled floor violated")
	}
}
