package sass

import (
	"fmt"
	"strconv"
	"strings"

	"valueexpert/gpu"
)

// Assemble parses assembly text into a Program. The grammar, one statement
// per line (";" starts a comment):
//
//	.kernel NAME              — program name (required, first)
//	.line FILE LINE           — attach source location to following instrs
//	LABEL:                    — branch target
//	[@[!]pN] MNEMONIC OPERANDS
//
// Mnemonics follow Instr.String: "imm r1, 42", "param r2, 0",
// "s2r r3, tid", "ld.32 r4, [r2+8]", "st.64 [r2+0], r5",
// "setp.lt p0, r1, r2", "setp.lt.f32 ...", "@p0 bra loop", "exit".
func Assemble(src string) (*Program, error) {
	p := &Program{Lines: map[gpu.PC]gpu.SrcLine{}}
	labels := map[string]int{}
	type patch struct {
		instr int
		label string
		line  int
	}
	var patches []patch
	cur := gpu.SrcLine{}

	lineno := 0
	for _, raw := range strings.Split(src, "\n") {
		lineno++
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := tokenize(line)
		if len(fields) == 0 {
			continue // the line held only separators
		}

		switch {
		case fields[0] == ".kernel":
			if len(fields) != 2 {
				return nil, asmErr(lineno, ".kernel wants a name")
			}
			p.Name = fields[1]
			continue
		case fields[0] == ".line":
			if len(fields) != 3 {
				return nil, asmErr(lineno, ".line wants FILE LINE")
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, asmErr(lineno, "bad .line number %q", fields[2])
			}
			cur = gpu.SrcLine{File: fields[1], Line: n}
			continue
		case strings.HasSuffix(fields[0], ":") && len(fields) == 1:
			labels[strings.TrimSuffix(fields[0], ":")] = len(p.Instrs)
			continue
		}

		in := Instr{Pred: NoPred}
		// Optional predicate guard.
		if strings.HasPrefix(fields[0], "@") {
			g := strings.TrimPrefix(fields[0], "@")
			if strings.HasPrefix(g, "!") {
				in.Neg = true
				g = g[1:]
			}
			pr, err := parsePred(g)
			if err != nil {
				return nil, asmErr(lineno, "%v", err)
			}
			in.Pred = int8(pr)
			fields = fields[1:]
			if len(fields) == 0 {
				return nil, asmErr(lineno, "guard with no instruction")
			}
		}

		mn := fields[0]
		ops := fields[1:]
		var err error
		switch {
		case mn == "nop":
			in.Op = OpNop
		case mn == "exit":
			in.Op = OpExit
		case mn == "imm":
			in.Op = OpImm
			err = opsRegImm(ops, &in)
		case mn == "param":
			in.Op = OpParam
			err = opsRegImm(ops, &in)
		case mn == "s2r":
			in.Op = OpS2R
			err = opsS2R(ops, &in)
		case mn == "mov":
			in.Op = OpMov
			err = opsRegReg(ops, &in)
		case mn == "iadd", mn == "isub", mn == "imul", mn == "and", mn == "or", mn == "xor",
			mn == "fadd", mn == "fmul", mn == "ffma", mn == "dadd", mn == "dmul", mn == "dfma":
			in.Op = map[string]Op{
				"iadd": OpIAdd, "isub": OpISub, "imul": OpIMul,
				"and": OpAnd, "or": OpOr, "xor": OpXor,
				"fadd": OpFAdd, "fmul": OpFMul, "ffma": OpFFma,
				"dadd": OpDAdd, "dmul": OpDMul, "dfma": OpDFma,
			}[mn]
			err = opsRegRegReg(ops, &in)
		case mn == "shl", mn == "shr":
			if mn == "shl" {
				in.Op = OpShl
			} else {
				in.Op = OpShr
			}
			err = opsRegRegImm(ops, &in)
		case mn == "i2f", mn == "f2i", mn == "i2d", mn == "d2i", mn == "f2d", mn == "d2f":
			in.Op = map[string]Op{
				"i2f": OpI2F, "f2i": OpF2I, "i2d": OpI2D,
				"d2i": OpD2I, "f2d": OpF2D, "d2f": OpD2F,
			}[mn]
			err = opsRegReg(ops, &in)
		case strings.HasPrefix(mn, "ld."):
			in.Op = OpLd
			err = opsLd(mn, ops, &in)
		case strings.HasPrefix(mn, "st."):
			in.Op = OpSt
			err = opsSt(mn, ops, &in)
		case strings.HasPrefix(mn, "setp."):
			in.Op = OpSetp
			err = opsSetp(mn, ops, &in)
		case mn == "bra":
			in.Op = OpBra
			if len(ops) != 1 {
				err = fmt.Errorf("bra wants a label")
			} else {
				patches = append(patches, patch{len(p.Instrs), ops[0], lineno})
			}
		default:
			err = fmt.Errorf("unknown mnemonic %q", mn)
		}
		if err != nil {
			return nil, asmErr(lineno, "%v", err)
		}
		if cur.File != "" {
			p.Lines[gpu.PC(len(p.Instrs))] = cur
		}
		p.Instrs = append(p.Instrs, in)
	}

	if p.Name == "" {
		return nil, fmt.Errorf("sass: missing .kernel directive")
	}
	for _, pt := range patches {
		target, ok := labels[pt.label]
		if !ok {
			return nil, asmErr(pt.line, "undefined label %q", pt.label)
		}
		p.Instrs[pt.instr].Imm = int64(target)
	}
	p.types = InferAccessTypes(p.Instrs)
	return p, nil
}

func asmErr(line int, format string, args ...interface{}) error {
	return fmt.Errorf("sass: line %d: %s", line, fmt.Sprintf(format, args...))
}

// tokenize splits on whitespace and commas, preserving bracketed operands
// as single tokens.
func tokenize(line string) []string {
	line = strings.ReplaceAll(line, ",", " ")
	return strings.Fields(line)
}

func parseReg(tok string) (uint8, error) {
	if !strings.HasPrefix(tok, "r") {
		return 0, fmt.Errorf("expected register, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return uint8(n), nil
}

func parsePred(tok string) (uint8, error) {
	if !strings.HasPrefix(tok, "p") {
		return 0, fmt.Errorf("expected predicate, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= NumPreds {
		return 0, fmt.Errorf("bad predicate %q", tok)
	}
	return uint8(n), nil
}

func parseImm(tok string) (int64, error) {
	n, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	return n, nil
}

// parseMem parses "[rN+OFF]" or "[rN]".
func parseMem(tok string) (reg uint8, off int64, err error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return 0, 0, fmt.Errorf("expected [reg+off], got %q", tok)
	}
	body := tok[1 : len(tok)-1]
	regTok, offTok := body, ""
	if i := strings.IndexAny(body, "+-"); i > 0 {
		regTok, offTok = body[:i], body[i:]
	}
	reg, err = parseReg(regTok)
	if err != nil {
		return 0, 0, err
	}
	if offTok != "" {
		off, err = parseImm(strings.TrimPrefix(offTok, "+"))
		if err != nil {
			return 0, 0, err
		}
	}
	return reg, off, nil
}

func parseWidth(mn string) (uint8, error) {
	suffix := mn[strings.LastIndexByte(mn, '.')+1:]
	bits, err := strconv.Atoi(suffix)
	if err != nil {
		return 0, fmt.Errorf("bad width suffix in %q", mn)
	}
	switch bits {
	case 8, 16, 32, 64:
		return uint8(bits / 8), nil
	}
	return 0, fmt.Errorf("unsupported width %d in %q", bits, mn)
}

func opsRegImm(ops []string, in *Instr) error {
	if len(ops) != 2 {
		return fmt.Errorf("want reg, imm")
	}
	r, err := parseReg(ops[0])
	if err != nil {
		return err
	}
	imm, err := parseImm(ops[1])
	if err != nil {
		return err
	}
	in.Dst, in.Imm = r, imm
	return nil
}

func opsS2R(ops []string, in *Instr) error {
	if len(ops) != 2 {
		return fmt.Errorf("want reg, special")
	}
	r, err := parseReg(ops[0])
	if err != nil {
		return err
	}
	sr, ok := map[string]int64{"tid": SRTid, "ctaid": SRCtaid, "ntid": SRNtid, "nctaid": SRNctaid}[ops[1]]
	if !ok {
		return fmt.Errorf("unknown special register %q", ops[1])
	}
	in.Dst, in.Imm = r, sr
	return nil
}

func opsRegReg(ops []string, in *Instr) error {
	if len(ops) != 2 {
		return fmt.Errorf("want reg, reg")
	}
	d, err := parseReg(ops[0])
	if err != nil {
		return err
	}
	a, err := parseReg(ops[1])
	if err != nil {
		return err
	}
	in.Dst, in.SrcA = d, a
	return nil
}

func opsRegRegReg(ops []string, in *Instr) error {
	if len(ops) != 3 {
		return fmt.Errorf("want reg, reg, reg")
	}
	d, err := parseReg(ops[0])
	if err != nil {
		return err
	}
	a, err := parseReg(ops[1])
	if err != nil {
		return err
	}
	b, err := parseReg(ops[2])
	if err != nil {
		return err
	}
	in.Dst, in.SrcA, in.SrcB = d, a, b
	return nil
}

func opsRegRegImm(ops []string, in *Instr) error {
	if len(ops) != 3 {
		return fmt.Errorf("want reg, reg, imm")
	}
	d, err := parseReg(ops[0])
	if err != nil {
		return err
	}
	a, err := parseReg(ops[1])
	if err != nil {
		return err
	}
	imm, err := parseImm(ops[2])
	if err != nil {
		return err
	}
	in.Dst, in.SrcA, in.Imm = d, a, imm
	return nil
}

func opsLd(mn string, ops []string, in *Instr) error {
	w, err := parseWidth(mn)
	if err != nil {
		return err
	}
	if len(ops) != 2 {
		return fmt.Errorf("ld wants reg, [reg+off]")
	}
	d, err := parseReg(ops[0])
	if err != nil {
		return err
	}
	base, off, err := parseMem(ops[1])
	if err != nil {
		return err
	}
	in.Mod, in.Dst, in.SrcA, in.Imm = w, d, base, off
	return nil
}

func opsSt(mn string, ops []string, in *Instr) error {
	w, err := parseWidth(mn)
	if err != nil {
		return err
	}
	if len(ops) != 2 {
		return fmt.Errorf("st wants [reg+off], reg")
	}
	base, off, err := parseMem(ops[0])
	if err != nil {
		return err
	}
	v, err := parseReg(ops[1])
	if err != nil {
		return err
	}
	in.Mod, in.SrcA, in.SrcB, in.Imm = w, base, v, off
	return nil
}

func opsSetp(mn string, ops []string, in *Instr) error {
	parts := strings.Split(mn, ".")
	if len(parts) < 2 {
		return fmt.Errorf("setp wants a condition")
	}
	cond, ok := map[string]uint8{"lt": CmpLT, "le": CmpLE, "eq": CmpEQ, "ne": CmpNE, "ge": CmpGE, "gt": CmpGT}[parts[1]]
	if !ok {
		return fmt.Errorf("unknown setp condition %q", parts[1])
	}
	mod := cond
	if len(parts) == 3 {
		switch parts[2] {
		case "f32":
			mod |= setpF32
		case "f64":
			mod |= setpF64
		default:
			return fmt.Errorf("unknown setp type %q", parts[2])
		}
	}
	if len(ops) != 3 {
		return fmt.Errorf("setp wants pred, reg, reg")
	}
	pd, err := parsePred(ops[0])
	if err != nil {
		return err
	}
	a, err := parseReg(ops[1])
	if err != nil {
		return err
	}
	b, err := parseReg(ops[2])
	if err != nil {
		return err
	}
	in.Mod, in.Dst, in.SrcA, in.SrcB = mod, pd, a, b
	return nil
}
