package sass

import (
	"strings"
	"testing"

	"valueexpert/gpu"
)

// TestAluAndShiftOps exercises the remaining ALU opcodes: shifts, bitwise
// ops, fadd/fmul/dmul/dfma, and every comparison condition.
func TestAluAndShiftOps(t *testing.T) {
	src := `
.kernel alu
  param r1, 0
  imm r2, 6
  shl r3, r2, 2      ; 24
  shr r4, r3, 1      ; 12
  and r5, r3, r4     ; 8
  or  r6, r3, r4     ; 28
  xor r7, r3, r4     ; 20
  st.64 [r1+0],  r3
  st.64 [r1+8],  r4
  st.64 [r1+16], r5
  st.64 [r1+24], r6
  st.64 [r1+32], r7
  ; float32 chain: (2.0 + 3.0) * 4.0 = 20.0
  imm r8, 2
  i2f r9, r8
  imm r10, 3
  i2f r11, r10
  fadd r12, r9, r11
  imm r13, 4
  i2f r14, r13
  fmul r15, r12, r14
  f2i r16, r15
  st.64 [r1+40], r16
  ; float64 chain: 2.0 * 3.0 (dmul), then dfma: 2*3 + 6 = 12
  i2d r17, r8
  i2d r18, r10
  dmul r19, r17, r18
  mov r20, r19
  dfma r20, r17, r18
  d2i r21, r20
  st.64 [r1+48], r21
  exit
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpu.New(gpu.A100)
	out, _ := dev.Mem.Alloc(64, "out")
	var ctr gpu.LaunchCounters
	if err := p.Instantiate(out.Addr).Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err != nil {
		t.Fatal(err)
	}
	want := []uint64{24, 12, 8, 28, 20, 20, 12}
	for i, w := range want {
		got, _ := dev.Mem.LoadRaw(out.Addr+uint64(8*i), 8)
		if got != w {
			t.Fatalf("slot %d = %d, want %d", i, got, w)
		}
	}
	if ctr.FP32Ops == 0 || ctr.FP64Ops == 0 || ctr.IntOps == 0 {
		t.Fatalf("op counters not populated: %+v", ctr)
	}
}

func TestAllCompareConditions(t *testing.T) {
	// For each condition, set p0 = cmp(2, 3) and store 1/0.
	conds := map[string]uint64{
		"lt": 1, "le": 1, "eq": 0, "ne": 1, "ge": 0, "gt": 0,
	}
	slot := 0
	for cond, want := range conds {
		src := `
.kernel cmp
  param r1, 0
  imm r2, 2
  imm r3, 3
  setp.` + cond + ` p0, r2, r3
  imm r4, 0
  @p0 imm r4, 1
  st.64 [r1+0], r4
  exit
`
		p, err := Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		dev := gpu.New(gpu.A100)
		out, _ := dev.Mem.Alloc(8, "out")
		var ctr gpu.LaunchCounters
		if err := p.Instantiate(out.Addr).Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err != nil {
			t.Fatal(err)
		}
		got, _ := dev.Mem.LoadRaw(out.Addr, 8)
		if got != want {
			t.Fatalf("setp.%s(2,3) = %d, want %d", cond, got, want)
		}
		slot++
	}
}

func TestFloatCompareConditionsAndNaN(t *testing.T) {
	// f32 compares across all conditions, plus NaN semantics: only NE is
	// true when either operand is NaN.
	mkSrc := func(cond string) string {
		return `
.kernel fcmp
  param r1, 0
  param r2, 1   ; a bits
  param r3, 2   ; b bits
  setp.` + cond + `.f32 p0, r2, r3
  imm r4, 0
  @p0 imm r4, 1
  st.64 [r1+0], r4
  exit
`
	}
	run := func(cond string, a, b float32) uint64 {
		p, err := Assemble(mkSrc(cond))
		if err != nil {
			t.Fatal(err)
		}
		dev := gpu.New(gpu.RTX2080Ti)
		out, _ := dev.Mem.Alloc(8, "out")
		var ctr gpu.LaunchCounters
		if err := p.Instantiate(out.Addr, gpu.RawFromFloat32(a), gpu.RawFromFloat32(b)).
			Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err != nil {
			t.Fatal(err)
		}
		got, _ := dev.Mem.LoadRaw(out.Addr, 8)
		return got
	}
	if run("lt", 1, 2) != 1 || run("le", 2, 2) != 1 || run("eq", 2, 2) != 1 ||
		run("ne", 1, 2) != 1 || run("ge", 3, 2) != 1 || run("gt", 3, 2) != 1 {
		t.Fatal("float compares wrong")
	}
	nan := float32(0)
	nan = nan / nan
	if run("eq", nan, nan) != 0 || run("lt", nan, 1) != 0 {
		t.Fatal("NaN compares should be false")
	}
	if run("ne", nan, 1) != 1 {
		t.Fatal("NaN != x should be true")
	}
}

func TestNopAndGuardedMemOps(t *testing.T) {
	src := `
.kernel guards
  param r1, 0
  nop
  imm r2, 1
  imm r3, 1
  setp.eq p1, r2, r3    ; true
  imm r4, 99
  @p1 st.64 [r1+0], r4  ; executes
  @!p1 st.64 [r1+8], r4 ; skipped
  exit
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpu.New(gpu.A100)
	out, _ := dev.Mem.Alloc(16, "out")
	dev.Mem.StoreRaw(out.Addr+8, 8, 7)
	var ctr gpu.LaunchCounters
	if err := p.Instantiate(out.Addr).Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err != nil {
		t.Fatal(err)
	}
	a, _ := dev.Mem.LoadRaw(out.Addr, 8)
	b, _ := dev.Mem.LoadRaw(out.Addr+8, 8)
	if a != 99 || b != 7 {
		t.Fatalf("guarded stores = %d, %d", a, b)
	}
	if ctr.Stores != 1 {
		t.Fatalf("stores = %d, want 1 (guard skipped one)", ctr.Stores)
	}
	if p.KernelName() != "guards" {
		t.Fatal("KernelName")
	}
}

func TestDisassembleEveryForm(t *testing.T) {
	src := `
.kernel forms
  nop
  imm r1, 5
  param r2, 0
  s2r r3, nctaid
  mov r4, r1
  shl r5, r1, 3
  shr r6, r1, 1
  i2f r7, r1
  ld.8 r8, [r2+4]
  st.16 [r2-2], r8
  setp.le.f64 p2, r4, r5
  @!p2 bra skip
skip:
  exit
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dis := p.Disassemble()
	for _, frag := range []string{
		"nop", "imm r1, 5", "param r2, 0", "s2r r3, nctaid", "mov r4, r1",
		"shl r5, r1, 3", "shr r6, r1, 1", "i2f r7, r1",
		"ld.8 r8, [r2+4]", "st.16 [r2+-2], r8", "setp.le.f64 p2, r4, r5",
		"@!p2 bra",
	} {
		if !strings.Contains(dis, frag) {
			t.Fatalf("disassembly missing %q:\n%s", frag, dis)
		}
	}
	// Negative offsets survive encode/decode.
	got, err := Decode(p.Binary())
	if err != nil {
		t.Fatal(err)
	}
	var sawNeg bool
	for _, in := range got {
		if in.Op == OpSt && in.Imm == -2 {
			sawNeg = true
		}
	}
	if !sawNeg {
		t.Fatal("negative immediate lost")
	}
	if Op(200).String() == "" || srName(9) == "" || cmpName(0xFF) == "" {
		t.Fatal("fallback strings")
	}
}

func TestPCOutOfRange(t *testing.T) {
	// A branch past the end must be caught, not crash.
	p := &Program{Name: "bad", Instrs: []Instr{{Op: OpBra, Pred: NoPred, Imm: 99}}}
	dev := gpu.New(gpu.A100)
	var ctr gpu.LaunchCounters
	if err := p.Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err == nil {
		t.Fatal("out-of-range pc not caught")
	}
	// Falling off the end without exit is also an error.
	p2 := &Program{Name: "noexit", Instrs: []Instr{{Op: OpNop, Pred: NoPred}}}
	if err := p2.Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err == nil {
		t.Fatal("running past the end not caught")
	}
}

func TestUnknownSpecialRegisterAtRuntime(t *testing.T) {
	p := &Program{Name: "badsr", Instrs: []Instr{
		{Op: OpS2R, Dst: 1, Pred: NoPred, Imm: 42},
		{Op: OpExit, Pred: NoPred},
	}}
	dev := gpu.New(gpu.A100)
	var ctr gpu.LaunchCounters
	if err := p.Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err == nil {
		t.Fatal("unknown special register not caught")
	}
}
