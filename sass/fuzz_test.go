package sass

import (
	"bytes"
	"testing"
)

// Fuzz targets: the binary parsers must never panic on arbitrary input,
// and accepted inputs must round-trip. Under plain `go test` these run
// over their seed corpora; `go test -fuzz` explores further.

func FuzzDecode(f *testing.F) {
	p, err := Assemble(saxpySrc)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(p.Binary())
	f.Add([]byte{})
	f.Add(make([]byte, InstrBytes))
	f.Fuzz(func(t *testing.T, data []byte) {
		instrs, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted input must re-encode to the same bytes.
		if !bytes.Equal(Encode(instrs), data) {
			t.Fatalf("decode/encode not idempotent")
		}
		// And type inference must not panic on arbitrary valid code.
		_ = InferAccessTypes(instrs)
	})
}

func FuzzReadModule(f *testing.F) {
	p, _ := Assemble(saxpySrc)
	m := &Module{Programs: []*Program{p}}
	var buf bytes.Buffer
	m.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte(moduleMagic))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadModule(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted modules must serialize again without error.
		var out bytes.Buffer
		if _, err := m.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
	})
}

func FuzzAssemble(f *testing.F) {
	f.Add(saxpySrc)
	f.Add(".kernel k\nexit")
	f.Add(".kernel k\nld.32 r1, [r2+0]\nbra nowhere")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		// Valid programs must encode/decode cleanly.
		if _, err := Decode(p.Binary()); err != nil {
			t.Fatalf("assembled program fails decode: %v", err)
		}
	})
}
