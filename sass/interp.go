package sass

import (
	"fmt"
	"math"

	"valueexpert/gpu"
)

// Program is an assembled kernel: the moral equivalent of a cubin function.
// It implements gpu.Kernel, so the runtime launches it like any other
// kernel. A Program is immutable after assembly; bind launch arguments with
// Instantiate.
type Program struct {
	Name   string
	Instrs []Instr
	Lines  map[gpu.PC]gpu.SrcLine

	args  []uint64
	types map[gpu.PC]gpu.AccessType
}

// Instantiate returns a launchable copy of the program with the given
// kernel arguments bound (pointers and scalars, as uint64 words).
func (p *Program) Instantiate(args ...uint64) *Program {
	q := *p
	q.args = append([]uint64(nil), args...)
	return &q
}

// KernelName implements gpu.Kernel.
func (p *Program) KernelName() string { return p.Name }

// AccessTypes implements gpu.Kernel: the per-PC access types recovered by
// the offline analyzer's slicing pass at assembly time.
func (p *Program) AccessTypes() map[gpu.PC]gpu.AccessType { return p.types }

// LineMapping implements gpu.Kernel.
func (p *Program) LineMapping() map[gpu.PC]gpu.SrcLine { return p.Lines }

// Binary returns the program's encoded image, what the offline analyzer
// would read from a cubin.
func (p *Program) Binary() []byte { return Encode(p.Instrs) }

// Disassemble renders the program as text.
func (p *Program) Disassemble() string {
	s := fmt.Sprintf(".kernel %s\n", p.Name)
	for i, in := range p.Instrs {
		s += fmt.Sprintf("%4d: %s\n", i, in)
	}
	return s
}

// maxSteps bounds one thread's dynamic instruction count, catching
// divergent programs (runaway loops) deterministically.
const maxSteps = 1 << 22

// Execute implements gpu.Kernel by interpreting the program for every
// thread in the grid, one thread at a time (blocks are serialized like the
// collector serializes streams).
func (p *Program) Execute(dev *gpu.Device, grid, block gpu.Dim3, hook gpu.AccessFunc, blockFilter func(int32) bool, ctr *gpu.LaunchCounters) error {
	nb, nt := grid.Count(), block.Count()
	var regs [NumRegs]uint64
	var preds [NumPreds]bool
	for b := 0; b < nb; b++ {
		instrument := hook != nil && (blockFilter == nil || blockFilter(int32(b)))
		for t := 0; t < nt; t++ {
			for i := range regs {
				regs[i] = 0
			}
			for i := range preds {
				preds[i] = false
			}
			if err := p.runThread(dev, int32(b), int32(t), nt, nb, &regs, &preds, hook, instrument, ctr); err != nil {
				return fmt.Errorf("kernel %s block %d thread %d: %w", p.Name, b, t, err)
			}
		}
	}
	return nil
}

func (p *Program) runThread(dev *gpu.Device, blk, tid int32, ntid, nctaid int, regs *[NumRegs]uint64, preds *[NumPreds]bool, hook gpu.AccessFunc, instrument bool, ctr *gpu.LaunchCounters) error {
	pc := 0
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return fmt.Errorf("sass: thread exceeded %d steps (infinite loop?)", maxSteps)
		}
		if pc < 0 || pc >= len(p.Instrs) {
			return fmt.Errorf("sass: pc %d out of range", pc)
		}
		in := p.Instrs[pc]
		if in.Pred != NoPred {
			taken := preds[in.Pred]
			if in.Neg {
				taken = !taken
			}
			if !taken {
				pc++
				continue
			}
		}
		switch in.Op {
		case OpNop:
		case OpExit:
			return nil
		case OpImm:
			regs[in.Dst] = uint64(in.Imm)
		case OpParam:
			if int(in.Imm) >= len(p.args) {
				return fmt.Errorf("sass: param %d out of range (%d args bound)", in.Imm, len(p.args))
			}
			regs[in.Dst] = p.args[in.Imm]
		case OpS2R:
			switch in.Imm {
			case SRTid:
				regs[in.Dst] = uint64(tid)
			case SRCtaid:
				regs[in.Dst] = uint64(blk)
			case SRNtid:
				regs[in.Dst] = uint64(ntid)
			case SRNctaid:
				regs[in.Dst] = uint64(nctaid)
			default:
				return fmt.Errorf("sass: unknown special register %d", in.Imm)
			}
		case OpMov:
			regs[in.Dst] = regs[in.SrcA]
		case OpIAdd:
			regs[in.Dst] = regs[in.SrcA] + regs[in.SrcB]
			ctr.IntOps++
		case OpISub:
			regs[in.Dst] = regs[in.SrcA] - regs[in.SrcB]
			ctr.IntOps++
		case OpIMul:
			regs[in.Dst] = regs[in.SrcA] * regs[in.SrcB]
			ctr.IntOps++
		case OpShl:
			regs[in.Dst] = regs[in.SrcA] << uint(in.Imm&63)
			ctr.IntOps++
		case OpShr:
			regs[in.Dst] = regs[in.SrcA] >> uint(in.Imm&63)
			ctr.IntOps++
		case OpAnd:
			regs[in.Dst] = regs[in.SrcA] & regs[in.SrcB]
			ctr.IntOps++
		case OpOr:
			regs[in.Dst] = regs[in.SrcA] | regs[in.SrcB]
			ctr.IntOps++
		case OpXor:
			regs[in.Dst] = regs[in.SrcA] ^ regs[in.SrcB]
			ctr.IntOps++
		case OpFAdd:
			regs[in.Dst] = f32op(regs[in.SrcA], regs[in.SrcB], func(a, b float32) float32 { return a + b })
			ctr.FP32Ops++
		case OpFMul:
			regs[in.Dst] = f32op(regs[in.SrcA], regs[in.SrcB], func(a, b float32) float32 { return a * b })
			ctr.FP32Ops++
		case OpFFma:
			acc := gpu.Float32FromRaw(regs[in.Dst])
			a := gpu.Float32FromRaw(regs[in.SrcA])
			bv := gpu.Float32FromRaw(regs[in.SrcB])
			regs[in.Dst] = gpu.RawFromFloat32(a*bv + acc)
			ctr.FP32Ops += 2
		case OpDAdd:
			regs[in.Dst] = f64op(regs[in.SrcA], regs[in.SrcB], func(a, b float64) float64 { return a + b })
			ctr.FP64Ops++
		case OpDMul:
			regs[in.Dst] = f64op(regs[in.SrcA], regs[in.SrcB], func(a, b float64) float64 { return a * b })
			ctr.FP64Ops++
		case OpDFma:
			acc := gpu.Float64FromRaw(regs[in.Dst])
			a := gpu.Float64FromRaw(regs[in.SrcA])
			bv := gpu.Float64FromRaw(regs[in.SrcB])
			regs[in.Dst] = gpu.RawFromFloat64(a*bv + acc)
			ctr.FP64Ops += 2
		case OpI2F:
			regs[in.Dst] = gpu.RawFromFloat32(float32(int64(regs[in.SrcA])))
			ctr.FP32Ops++
		case OpF2I:
			regs[in.Dst] = uint64(int64(gpu.Float32FromRaw(regs[in.SrcA])))
			ctr.FP32Ops++
		case OpI2D:
			regs[in.Dst] = gpu.RawFromFloat64(float64(int64(regs[in.SrcA])))
			ctr.FP64Ops++
		case OpD2I:
			regs[in.Dst] = uint64(int64(gpu.Float64FromRaw(regs[in.SrcA])))
			ctr.FP64Ops++
		case OpF2D:
			regs[in.Dst] = gpu.RawFromFloat64(float64(gpu.Float32FromRaw(regs[in.SrcA])))
			ctr.FP32Ops++
		case OpD2F:
			regs[in.Dst] = gpu.RawFromFloat32(float32(gpu.Float64FromRaw(regs[in.SrcA])))
			ctr.FP64Ops++
		case OpLd:
			addr := regs[in.SrcA] + uint64(in.Imm)
			raw, err := dev.Mem.LoadRaw(addr, in.Mod)
			if err != nil {
				return err
			}
			regs[in.Dst] = raw
			ctr.Loads++
			ctr.BytesLoaded += uint64(in.Mod)
			if instrument {
				at := p.types[gpu.PC(pc)]
				hook(gpu.Access{
					PC: gpu.PC(pc), Addr: addr, Size: in.Mod, Kind: at.Kind,
					Store: false, Raw: raw, Block: blk, Thread: tid,
				})
			}
		case OpSt:
			addr := regs[in.SrcA] + uint64(in.Imm)
			raw := truncate(regs[in.SrcB], in.Mod)
			if err := dev.Mem.StoreRaw(addr, in.Mod, raw); err != nil {
				return err
			}
			ctr.Stores++
			ctr.BytesStored += uint64(in.Mod)
			if instrument {
				at := p.types[gpu.PC(pc)]
				hook(gpu.Access{
					PC: gpu.PC(pc), Addr: addr, Size: in.Mod, Kind: at.Kind,
					Store: true, Raw: raw, Block: blk, Thread: tid,
				})
			}
		case OpSetp:
			a, b := regs[in.SrcA], regs[in.SrcB]
			var r bool
			switch {
			case in.Mod&setpF32 != 0:
				r = cmpFloat(float64(gpu.Float32FromRaw(a)), float64(gpu.Float32FromRaw(b)), in.Mod&0x0f)
				ctr.FP32Ops++
			case in.Mod&setpF64 != 0:
				r = cmpFloat(gpu.Float64FromRaw(a), gpu.Float64FromRaw(b), in.Mod&0x0f)
				ctr.FP64Ops++
			default:
				r = cmpInt(int64(a), int64(b), in.Mod&0x0f)
				ctr.IntOps++
			}
			preds[in.Dst] = r
		case OpBra:
			pc = int(in.Imm)
			continue
		default:
			return fmt.Errorf("sass: unimplemented opcode %s", in.Op)
		}
		pc++
	}
}

func f32op(a, b uint64, f func(a, b float32) float32) uint64 {
	return gpu.RawFromFloat32(f(gpu.Float32FromRaw(a), gpu.Float32FromRaw(b)))
}

func f64op(a, b uint64, f func(a, b float64) float64) uint64 {
	return gpu.RawFromFloat64(f(gpu.Float64FromRaw(a), gpu.Float64FromRaw(b)))
}

func truncate(v uint64, width uint8) uint64 {
	switch width {
	case 1:
		return v & 0xff
	case 2:
		return v & 0xffff
	case 4:
		return v & 0xffff_ffff
	}
	return v
}

func cmpInt(a, b int64, cond uint8) bool {
	switch cond {
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpGE:
		return a >= b
	case CmpGT:
		return a > b
	}
	return false
}

func cmpFloat(a, b float64, cond uint8) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return cond == CmpNE
	}
	switch cond {
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpGE:
		return a >= b
	case CmpGT:
		return a > b
	}
	return false
}
