// Package sass defines a small virtual GPU instruction set — a stand-in for
// NVIDIA SASS — together with an assembler, a binary encoder/decoder, an
// interpreter that executes programs on the simulated device, and the
// offline analyzer's bidirectional access-type inference (paper §5.1).
//
// The ISA deliberately mirrors the property of real SASS that matters to
// ValueExpert: memory instructions carry an access *width* but not a value
// *type* (an LDG.64 may feed either one f64 or packed integers), so the
// type of each load/store must be recovered from the instructions on its
// def-use chains.
package sass

import (
	"encoding/binary"
	"fmt"
)

// Op enumerates instruction opcodes.
type Op uint8

// Opcodes.
const (
	OpNop Op = iota
	OpExit
	OpImm   // Rd = Imm (64-bit immediate)
	OpParam // Rd = kernel argument #Imm
	OpS2R   // Rd = special register #Imm (see SR constants)
	OpMov   // Rd = Ra

	OpIAdd // Rd = Ra + Rb (integer)
	OpISub // Rd = Ra - Rb
	OpIMul // Rd = Ra * Rb
	OpShl  // Rd = Ra << Imm
	OpShr  // Rd = Ra >> Imm (logical)
	OpAnd  // Rd = Ra & Rb
	OpOr   // Rd = Ra | Rb
	OpXor  // Rd = Ra ^ Rb

	OpFAdd // Rd = Ra + Rb (float32 in low bits)
	OpFMul // Rd = Ra * Rb (float32)
	OpFFma // Rd = Ra*Rb + Rd (float32)
	OpDAdd // Rd = Ra + Rb (float64)
	OpDMul // Rd = Ra * Rb (float64)
	OpDFma // Rd = Ra*Rb + Rd (float64)

	OpI2F // Rd = float32(int64(Ra))
	OpF2I // Rd = int64(float32(Ra))
	OpI2D // Rd = float64(int64(Ra))
	OpD2I // Rd = int64(float64(Ra))
	OpF2D // Rd = float64(float32(Ra))
	OpD2F // Rd = float32(float64(Ra))

	OpLd   // Rd = mem[Ra + Imm], width in Mod
	OpSt   // mem[Ra + Imm] = Rb, width in Mod
	OpSetp // Pd(Dst) = compare(Ra, Rb); Mod encodes condition and type
	OpBra  // branch to instruction index Imm (subject to predicate)

	opCount
)

var opNames = [...]string{
	OpNop: "nop", OpExit: "exit", OpImm: "imm", OpParam: "param", OpS2R: "s2r",
	OpMov:  "mov",
	OpIAdd: "iadd", OpISub: "isub", OpIMul: "imul", OpShl: "shl", OpShr: "shr",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpFAdd: "fadd", OpFMul: "fmul", OpFFma: "ffma",
	OpDAdd: "dadd", OpDMul: "dmul", OpDFma: "dfma",
	OpI2F: "i2f", OpF2I: "f2i", OpI2D: "i2d", OpD2I: "d2i", OpF2D: "f2d", OpD2F: "d2f",
	OpLd: "ld", OpSt: "st", OpSetp: "setp", OpBra: "bra",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Special-register selectors for OpS2R.
const (
	SRTid    = 0 // flat thread index within the block
	SRCtaid  = 1 // flat block index within the grid
	SRNtid   = 2 // threads per block
	SRNctaid = 3 // blocks per grid
)

// Setp condition codes, stored in the low nibble of Mod. Bit 4 of Mod set
// means a float32 compare; bit 5 means float64.
const (
	CmpLT = 0
	CmpLE = 1
	CmpEQ = 2
	CmpNE = 3
	CmpGE = 4
	CmpGT = 5

	setpF32 = 1 << 4
	setpF64 = 1 << 5
)

// NumRegs is the register-file size (R0..R63). Predicates are P0..P7.
const (
	NumRegs  = 64
	NumPreds = 8
)

// NoPred marks an unpredicated instruction.
const NoPred = int8(-1)

// Instr is one decoded instruction. Width for Ld/St lives in Mod (1, 2, 4,
// or 8 bytes).
type Instr struct {
	Op   Op
	Mod  uint8
	Dst  uint8 // destination register (or predicate index for Setp)
	SrcA uint8
	SrcB uint8
	Pred int8 // predicate register guarding execution, or NoPred
	Neg  bool // execute when predicate is false
	Imm  int64
}

// Width returns the access width of a memory instruction.
func (in Instr) Width() uint8 { return in.Mod }

// String disassembles the instruction.
func (in Instr) String() string {
	guard := ""
	if in.Pred != NoPred {
		n := ""
		if in.Neg {
			n = "!"
		}
		guard = fmt.Sprintf("@%sp%d ", n, in.Pred)
	}
	switch in.Op {
	case OpNop, OpExit:
		return guard + in.Op.String()
	case OpImm:
		return fmt.Sprintf("%simm r%d, %d", guard, in.Dst, in.Imm)
	case OpParam:
		return fmt.Sprintf("%sparam r%d, %d", guard, in.Dst, in.Imm)
	case OpS2R:
		return fmt.Sprintf("%ss2r r%d, %s", guard, in.Dst, srName(int(in.Imm)))
	case OpMov:
		return fmt.Sprintf("%smov r%d, r%d", guard, in.Dst, in.SrcA)
	case OpShl, OpShr:
		return fmt.Sprintf("%s%s r%d, r%d, %d", guard, in.Op, in.Dst, in.SrcA, in.Imm)
	case OpI2F, OpF2I, OpI2D, OpD2I, OpF2D, OpD2F:
		return fmt.Sprintf("%s%s r%d, r%d", guard, in.Op, in.Dst, in.SrcA)
	case OpLd:
		return fmt.Sprintf("%sld.%d r%d, [r%d+%d]", guard, in.Mod*8, in.Dst, in.SrcA, in.Imm)
	case OpSt:
		return fmt.Sprintf("%sst.%d [r%d+%d], r%d", guard, in.Mod*8, in.SrcA, in.Imm, in.SrcB)
	case OpSetp:
		return fmt.Sprintf("%ssetp.%s p%d, r%d, r%d", guard, cmpName(in.Mod), in.Dst, in.SrcA, in.SrcB)
	case OpBra:
		return fmt.Sprintf("%sbra %d", guard, in.Imm)
	default:
		return fmt.Sprintf("%s%s r%d, r%d, r%d", guard, in.Op, in.Dst, in.SrcA, in.SrcB)
	}
}

func srName(sr int) string {
	switch sr {
	case SRTid:
		return "tid"
	case SRCtaid:
		return "ctaid"
	case SRNtid:
		return "ntid"
	case SRNctaid:
		return "nctaid"
	}
	return fmt.Sprintf("sr%d", sr)
}

func cmpName(mod uint8) string {
	names := []string{"lt", "le", "eq", "ne", "ge", "gt"}
	c := int(mod & 0x0f)
	base := "?"
	if c < len(names) {
		base = names[c]
	}
	switch {
	case mod&setpF32 != 0:
		return base + ".f32"
	case mod&setpF64 != 0:
		return base + ".f64"
	}
	return base
}

// InstrBytes is the fixed binary encoding size of one instruction.
const InstrBytes = 16

// Encode serializes instructions into the program's binary image, the form
// the offline analyzer consumes.
func Encode(instrs []Instr) []byte {
	out := make([]byte, len(instrs)*InstrBytes)
	for i, in := range instrs {
		b := out[i*InstrBytes:]
		b[0] = byte(in.Op)
		b[1] = in.Mod
		b[2] = in.Dst
		b[3] = in.SrcA
		b[4] = in.SrcB
		b[5] = byte(in.Pred)
		if in.Neg {
			b[6] = 1
		}
		binary.LittleEndian.PutUint64(b[8:], uint64(in.Imm))
	}
	return out
}

// Decode parses a binary image back into instructions.
func Decode(img []byte) ([]Instr, error) {
	if len(img)%InstrBytes != 0 {
		return nil, fmt.Errorf("sass: image size %d not a multiple of %d", len(img), InstrBytes)
	}
	out := make([]Instr, len(img)/InstrBytes)
	for i := range out {
		b := img[i*InstrBytes:]
		op := Op(b[0])
		if op >= opCount {
			return nil, fmt.Errorf("sass: invalid opcode %d at instruction %d", b[0], i)
		}
		if b[2] >= NumRegs || b[3] >= NumRegs || b[4] >= NumRegs {
			return nil, fmt.Errorf("sass: register operand out of range at instruction %d", i)
		}
		pred := int8(b[5])
		if pred != NoPred && (pred < 0 || pred >= NumPreds) {
			return nil, fmt.Errorf("sass: invalid predicate %d at instruction %d", pred, i)
		}
		// The encoding is canonical: the Neg flag is 0/1 and byte 7 is a
		// zero pad. Rejecting anything else keeps Decode∘Encode the
		// identity and catches corrupted images early.
		if b[6] > 1 || b[7] != 0 {
			return nil, fmt.Errorf("sass: non-canonical flag bytes at instruction %d", i)
		}
		out[i] = Instr{
			Op:   op,
			Mod:  b[1],
			Dst:  b[2],
			SrcA: b[3],
			SrcB: b[4],
			Pred: pred,
			Neg:  b[6] == 1,
			Imm:  int64(binary.LittleEndian.Uint64(b[8:])),
		}
	}
	return out, nil
}
