package sass

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"valueexpert/gpu"
)

// Module is a container of assembled kernels with their debug
// information — the moral equivalent of a fatbin/cubin that the offline
// analyzer reads: code sections per function, a line-mapping (debug)
// section, and a symbol table. Modules serialize to a compact binary
// format so binaries can be distributed, loaded postmortem, and analyzed
// without their source.
type Module struct {
	Programs []*Program
}

// Find returns the program with the given kernel name.
func (m *Module) Find(name string) (*Program, bool) {
	for _, p := range m.Programs {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// Binary layout:
//
//	magic "VXSASS1\x00"
//	u32 nPrograms
//	per program:
//	  u32 nameLen, name bytes
//	  u32 codeLen, code bytes (Encode format)
//	  u32 nLineEntries, per entry: u32 pc, u32 fileLen, file bytes, u32 line
const moduleMagic = "VXSASS1\x00"

// WriteTo serializes the module.
func (m *Module) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(moduleMagic)
	writeU32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) } //nolint:errcheck
	writeU32(uint32(len(m.Programs)))
	for _, p := range m.Programs {
		writeU32(uint32(len(p.Name)))
		buf.WriteString(p.Name)
		code := Encode(p.Instrs)
		writeU32(uint32(len(code)))
		buf.Write(code)
		// Deterministic line-table order: by PC.
		pcs := make([]gpu.PC, 0, len(p.Lines))
		for pc := range p.Lines {
			pcs = append(pcs, pc)
		}
		for i := 1; i < len(pcs); i++ {
			for j := i; j > 0 && pcs[j] < pcs[j-1]; j-- {
				pcs[j], pcs[j-1] = pcs[j-1], pcs[j]
			}
		}
		writeU32(uint32(len(pcs)))
		for _, pc := range pcs {
			l := p.Lines[pc]
			writeU32(uint32(pc))
			writeU32(uint32(len(l.File)))
			buf.WriteString(l.File)
			writeU32(uint32(l.Line))
		}
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadModule parses a serialized module and re-runs the offline
// analyzer's access-type inference on each function's code, exactly what
// the real tool does when it maps a cubin postmortem.
func ReadModule(r io.Reader) (*Module, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sass: read module: %w", err)
	}
	if len(data) < len(moduleMagic) || string(data[:len(moduleMagic)]) != moduleMagic {
		return nil, fmt.Errorf("sass: bad module magic")
	}
	off := len(moduleMagic)
	readU32 := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("sass: truncated module at offset %d", off)
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	readBytes := func(n uint32) ([]byte, error) {
		if off+int(n) > len(data) {
			return nil, fmt.Errorf("sass: truncated module at offset %d", off)
		}
		b := data[off : off+int(n)]
		off += int(n)
		return b, nil
	}

	nProg, err := readU32()
	if err != nil {
		return nil, err
	}
	if nProg > 1<<16 {
		return nil, fmt.Errorf("sass: implausible program count %d", nProg)
	}
	m := &Module{}
	for i := uint32(0); i < nProg; i++ {
		nameLen, err := readU32()
		if err != nil {
			return nil, err
		}
		name, err := readBytes(nameLen)
		if err != nil {
			return nil, err
		}
		codeLen, err := readU32()
		if err != nil {
			return nil, err
		}
		code, err := readBytes(codeLen)
		if err != nil {
			return nil, err
		}
		instrs, err := Decode(code)
		if err != nil {
			return nil, fmt.Errorf("sass: program %q: %w", name, err)
		}
		p := &Program{Name: string(name), Instrs: instrs, Lines: map[gpu.PC]gpu.SrcLine{}}
		nLines, err := readU32()
		if err != nil {
			return nil, err
		}
		for j := uint32(0); j < nLines; j++ {
			pc, err := readU32()
			if err != nil {
				return nil, err
			}
			fileLen, err := readU32()
			if err != nil {
				return nil, err
			}
			file, err := readBytes(fileLen)
			if err != nil {
				return nil, err
			}
			line, err := readU32()
			if err != nil {
				return nil, err
			}
			p.Lines[gpu.PC(pc)] = gpu.SrcLine{File: string(file), Line: int(line)}
		}
		// The offline analyzer re-derives access types from the code.
		p.types = InferAccessTypes(p.Instrs)
		m.Programs = append(m.Programs, p)
	}
	return m, nil
}
