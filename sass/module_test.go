package sass

import (
	"bytes"
	"testing"

	"valueexpert/gpu"
)

func TestModuleRoundTrip(t *testing.T) {
	saxpy := assemble(t, saxpySrc)
	addi := assemble(t, `
.kernel addi
.line add.cu 3
  param r1, 0
  ld.32 r2, [r1+0]
  imm r3, 1
  iadd r2, r2, r3
  st.32 [r1+0], r2
  exit
`)
	m := &Module{Programs: []*Program{saxpy, addi}}

	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModule(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Programs) != 2 {
		t.Fatalf("programs = %d", len(got.Programs))
	}
	// Instructions identical.
	gp, ok := got.Find("saxpy")
	if !ok {
		t.Fatal("saxpy missing")
	}
	if len(gp.Instrs) != len(saxpy.Instrs) {
		t.Fatalf("instr count %d != %d", len(gp.Instrs), len(saxpy.Instrs))
	}
	for i := range gp.Instrs {
		if gp.Instrs[i] != saxpy.Instrs[i] {
			t.Fatalf("instr %d differs", i)
		}
	}
	// Line mapping (the debug section) survives.
	if len(gp.Lines) != len(saxpy.Lines) {
		t.Fatalf("line entries %d != %d", len(gp.Lines), len(saxpy.Lines))
	}
	for pc, l := range saxpy.Lines {
		if gp.Lines[pc] != l {
			t.Fatalf("line for pc %d = %v, want %v", pc, gp.Lines[pc], l)
		}
	}
	// The offline analyzer re-derived access types from the decoded code.
	at := gp.AccessTypes()
	if len(at) != 3 {
		t.Fatalf("access types = %v", at)
	}
	for pc, a := range at {
		if a.Kind != gpu.KindFloat {
			t.Fatalf("pc %d type %v, want float (re-sliced)", pc, a.Kind)
		}
	}
	// A loaded program still executes.
	dev := gpu.New(gpu.A100)
	x, _ := dev.Mem.Alloc(4, "x")
	dev.Mem.StoreRaw(x.Addr, 4, 41)
	ga, _ := got.Find("addi")
	var ctr gpu.LaunchCounters
	if err := ga.Instantiate(x.Addr).Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err != nil {
		t.Fatal(err)
	}
	raw, _ := dev.Mem.LoadRaw(x.Addr, 4)
	if raw != 42 {
		t.Fatalf("loaded program computed %d, want 42", raw)
	}
	if _, ok := got.Find("nope"); ok {
		t.Fatal("phantom program")
	}
}

func TestReadModuleErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOTMAGIC"),
		[]byte(moduleMagic), // missing count
		append([]byte(moduleMagic), 0xFF, 0xFF, 0xFF, 0xFF),   // absurd count
		append([]byte(moduleMagic), 1, 0, 0, 0, 200, 0, 0, 0), // name overruns
	}
	for i, data := range cases {
		if _, err := ReadModule(bytes.NewReader(data)); err == nil {
			t.Fatalf("case %d: corrupt module accepted", i)
		}
	}
	// Corrupt code section (invalid opcode) is caught by Decode.
	m := &Module{Programs: []*Program{assemble(t, ".kernel k\nexit")}}
	var buf bytes.Buffer
	m.WriteTo(&buf)
	raw := buf.Bytes()
	raw[len(moduleMagic)+4+4+1] = 0xEE // first instruction's opcode byte
	if _, err := ReadModule(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt code section accepted")
	}
}
