package sass

import (
	"strings"
	"testing"
	"testing/quick"

	"valueexpert/gpu"
)

// saxpySrc computes y[i] = a*x[i] + y[i] over n float32s.
// Args: 0=a (f32 bits), 1=x ptr, 2=y ptr, 3=n.
const saxpySrc = `
.kernel saxpy
.line saxpy.cu 12
  s2r   r1, tid
  s2r   r2, ctaid
  s2r   r3, ntid
  imul  r2, r2, r3
  iadd  r1, r1, r2        ; gid
  param r4, 3             ; n
  setp.ge p0, r1, r4
  @p0 exit
  imm   r5, 4
  imul  r6, r1, r5        ; byte offset
  param r7, 1
  iadd  r7, r7, r6        ; &x[i]
  param r8, 2
  iadd  r8, r8, r6        ; &y[i]
.line saxpy.cu 13
  ld.32 r9, [r7+0]        ; x[i]
  ld.32 r10, [r8+0]       ; y[i]
  param r11, 0            ; a
  ffma  r10, r11, r9
.line saxpy.cu 14
  st.32 [r8+0], r10
  exit
`

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"iadd r1, r2, r3",               // missing .kernel
		".kernel k\nbogus r1",           // unknown mnemonic
		".kernel k\nimm r99, 1",         // bad register
		".kernel k\nbra nowhere",        // undefined label
		".kernel k\nld.24 r1, [r2+0]",   // bad width
		".kernel k\nsetp.zz p0, r1, r2", // bad condition
		".kernel k\n@p9 exit",           // bad predicate
		".kernel k\ns2r r1, clock",      // bad special register
		".kernel k\n.line only_file",    // malformed .line
		".kernel k\nld.32 r1, r2",       // missing brackets
		".kernel k\nimm r1, notanumber", // bad immediate
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestSaxpyExecution(t *testing.T) {
	p := assemble(t, saxpySrc)
	dev := gpu.New(gpu.RTX2080Ti)
	const n = 100
	x, _ := dev.Mem.Alloc(4*n, "x")
	y, _ := dev.Mem.Alloc(4*n, "y")
	for i := 0; i < n; i++ {
		dev.Mem.StoreRaw(x.Addr+uint64(4*i), 4, gpu.RawFromFloat32(float32(i)))
		dev.Mem.StoreRaw(y.Addr+uint64(4*i), 4, gpu.RawFromFloat32(1))
	}
	inst := p.Instantiate(gpu.RawFromFloat32(2), x.Addr, y.Addr, n)
	var ctr gpu.LaunchCounters
	if err := inst.Execute(dev, gpu.Dim1(2), gpu.Dim1(64), nil, nil, &ctr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		raw, _ := dev.Mem.LoadRaw(y.Addr+uint64(4*i), 4)
		want := 2*float32(i) + 1
		if got := gpu.Float32FromRaw(raw); got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
	if ctr.Loads != 2*n || ctr.Stores != n {
		t.Fatalf("loads/stores = %d/%d", ctr.Loads, ctr.Stores)
	}
	if ctr.FP32Ops == 0 {
		t.Fatal("no FP32 ops counted")
	}
}

func TestSaxpyAccessTypeInference(t *testing.T) {
	p := assemble(t, saxpySrc)
	at := p.AccessTypes()
	// Three memory instructions: two loads of x/y and one store of y,
	// all float32 via the ffma use.
	nFloat := 0
	for pc, a := range at {
		if a.Size != 4 {
			t.Fatalf("pc %d: size %d, want 4", pc, a.Size)
		}
		if a.Kind == gpu.KindFloat {
			nFloat++
		}
	}
	if len(at) != 3 || nFloat != 3 {
		t.Fatalf("access types = %v (want 3 float entries)", at)
	}
}

func TestSliceIntKernel(t *testing.T) {
	// c[i] = a[i] + b[i] over int32: loads/store must infer KindInt.
	src := `
.kernel addi
  s2r  r1, tid
  imm  r2, 4
  imul r3, r1, r2
  param r4, 0
  iadd r4, r4, r3
  param r5, 1
  iadd r5, r5, r3
  param r6, 2
  iadd r6, r6, r3
  ld.32 r7, [r4+0]
  ld.32 r8, [r5+0]
  iadd r9, r7, r8
  st.32 [r6+0], r9
  exit
`
	p := assemble(t, src)
	for pc, a := range p.AccessTypes() {
		if a.Kind != gpu.KindInt {
			t.Fatalf("pc %d inferred %v, want int", pc, a.Kind)
		}
	}
}

func TestSliceBackwardThroughMov(t *testing.T) {
	// A store whose value passes through MOV from a DADD producer: the
	// backward direction of the slice must type it f64.
	src := `
.kernel movslice
  param r1, 0
  ld.64 r2, [r1+0]
  ld.64 r3, [r1+8]
  dadd  r4, r2, r3
  mov   r5, r4
  st.64 [r1+16], r5
  exit
`
	p := assemble(t, src)
	at := p.AccessTypes()
	if at[gpu.PC(5)].Kind != gpu.KindFloat || at[gpu.PC(5)].Size != 8 {
		t.Fatalf("store type = %v, want float64", at[gpu.PC(5)])
	}
	// The loads feed dadd, so forward slicing types them too.
	if at[gpu.PC(1)].Kind != gpu.KindFloat || at[gpu.PC(2)].Kind != gpu.KindFloat {
		t.Fatalf("load types = %v, %v, want float", at[gpu.PC(1)], at[gpu.PC(2)])
	}
}

func TestSliceConflictFallsBackToUnknown(t *testing.T) {
	// r2 is used both as float and int: slicing must answer unknown, not
	// guess.
	src := `
.kernel conflict
  param r1, 0
  ld.32 r2, [r1+0]
  fadd  r3, r2, r2
  iadd  r4, r2, r2
  st.32 [r1+4], r2
  exit
`
	p := assemble(t, src)
	at := p.AccessTypes()
	if at[gpu.PC(1)].Kind != gpu.KindUnknown {
		t.Fatalf("conflicted load typed %v, want unknown", at[gpu.PC(1)].Kind)
	}
}

func TestBranchLoop(t *testing.T) {
	// Sum 0..9 into out[0] via a predicated loop.
	src := `
.kernel sumloop
  param r1, 0   ; out
  imm   r2, 0   ; i
  imm   r3, 0   ; acc
  imm   r4, 10
loop:
  iadd  r3, r3, r2
  imm   r5, 1
  iadd  r2, r2, r5
  setp.lt p0, r2, r4
  @p0 bra loop
  st.64 [r1+0], r3
  exit
`
	p := assemble(t, src)
	dev := gpu.New(gpu.A100)
	out, _ := dev.Mem.Alloc(8, "out")
	var ctr gpu.LaunchCounters
	if err := p.Instantiate(out.Addr).Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err != nil {
		t.Fatal(err)
	}
	raw, _ := dev.Mem.LoadRaw(out.Addr, 8)
	if raw != 45 {
		t.Fatalf("sum = %d, want 45", raw)
	}
}

func TestInfiniteLoopDetected(t *testing.T) {
	src := `
.kernel spin
top:
  bra top
`
	p := assemble(t, src)
	dev := gpu.New(gpu.A100)
	var ctr gpu.LaunchCounters
	if err := p.Instantiate().Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err == nil {
		t.Fatal("infinite loop not detected")
	}
}

func TestParamOutOfRange(t *testing.T) {
	p := assemble(t, ".kernel k\nparam r1, 5\nexit")
	dev := gpu.New(gpu.A100)
	var ctr gpu.LaunchCounters
	if err := p.Instantiate(1, 2).Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err == nil {
		t.Fatal("param out of range not detected")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := assemble(t, saxpySrc)
	img := p.Binary()
	got, err := Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(p.Instrs) {
		t.Fatalf("decoded %d instrs, want %d", len(got), len(p.Instrs))
	}
	for i := range got {
		if got[i] != p.Instrs[i] {
			t.Fatalf("instr %d: %+v != %+v", i, got[i], p.Instrs[i])
		}
	}
	if _, err := Decode(img[:7]); err == nil {
		t.Fatal("truncated image decoded")
	}
	bad := append([]byte(nil), img...)
	bad[0] = 0xFF
	if _, err := Decode(bad); err == nil {
		t.Fatal("invalid opcode decoded")
	}
}

// Property: Encode∘Decode is the identity on valid instruction slices.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(ops []uint8, mods []uint8, imms []int64) bool {
		n := len(ops)
		if len(mods) < n {
			n = len(mods)
		}
		if len(imms) < n {
			n = len(imms)
		}
		instrs := make([]Instr, n)
		for i := 0; i < n; i++ {
			instrs[i] = Instr{
				Op:   Op(ops[i] % uint8(opCount)),
				Mod:  mods[i],
				Dst:  ops[i] % NumRegs,
				SrcA: mods[i] % NumRegs,
				SrcB: uint8(imms[i]) % NumRegs,
				Pred: int8(imms[i]%NumPreds) & 7,
				Neg:  imms[i]%2 == 0,
				Imm:  imms[i],
			}
		}
		got, err := Decode(Encode(instrs))
		if err != nil {
			return false
		}
		for i := range got {
			if got[i] != instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleMentionsEveryInstr(t *testing.T) {
	p := assemble(t, saxpySrc)
	dis := p.Disassemble()
	for _, frag := range []string{".kernel saxpy", "ld.32", "st.32", "ffma", "setp.ge", "exit"} {
		if !strings.Contains(dis, frag) {
			t.Fatalf("disassembly missing %q:\n%s", frag, dis)
		}
	}
}

func TestLineMapping(t *testing.T) {
	p := assemble(t, saxpySrc)
	lines := p.LineMapping()
	if len(lines) == 0 {
		t.Fatal("no line mapping")
	}
	// The store carries line 14.
	var stPC gpu.PC
	found := false
	for pc, in := range p.Instrs {
		if in.Op == OpSt {
			stPC = gpu.PC(pc)
			found = true
		}
	}
	if !found {
		t.Fatal("no store instruction")
	}
	if l := lines[stPC]; l.File != "saxpy.cu" || l.Line != 14 {
		t.Fatalf("store line = %v, want saxpy.cu:14", l)
	}
	if (gpu.SrcLine{}).String() != "?" {
		t.Fatal("empty SrcLine should render as ?")
	}
}

func TestInstrumentationHookReceivesTypedRecords(t *testing.T) {
	p := assemble(t, saxpySrc)
	dev := gpu.New(gpu.RTX2080Ti)
	const n = 8
	x, _ := dev.Mem.Alloc(4*n, "x")
	y, _ := dev.Mem.Alloc(4*n, "y")
	var recs []gpu.Access
	var ctr gpu.LaunchCounters
	inst := p.Instantiate(gpu.RawFromFloat32(1), x.Addr, y.Addr, n)
	err := inst.Execute(dev, gpu.Dim1(1), gpu.Dim1(n), func(a gpu.Access) { recs = append(recs, a) }, nil, &ctr)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3*n {
		t.Fatalf("records = %d, want %d", len(recs), 3*n)
	}
	for _, r := range recs {
		if r.Kind != gpu.KindFloat {
			t.Fatalf("record kind = %v, want float (from slicing)", r.Kind)
		}
	}
}

func TestPredicateNegation(t *testing.T) {
	src := `
.kernel negpred
  param r1, 0
  imm r2, 0
  imm r3, 1
  setp.eq p0, r2, r3   ; false
  @!p0 imm r4, 7       ; executes
  @p0  imm r4, 9       ; skipped
  st.64 [r1+0], r4
  exit
`
	p := assemble(t, src)
	dev := gpu.New(gpu.A100)
	out, _ := dev.Mem.Alloc(8, "out")
	var ctr gpu.LaunchCounters
	if err := p.Instantiate(out.Addr).Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err != nil {
		t.Fatal(err)
	}
	raw, _ := dev.Mem.LoadRaw(out.Addr, 8)
	if raw != 7 {
		t.Fatalf("out = %d, want 7", raw)
	}
}

func TestFloatCompareAndConvert(t *testing.T) {
	src := `
.kernel fcvt
  param r1, 0
  imm r2, 3
  i2d r3, r2       ; 3.0 (f64)
  i2f r4, r2       ; 3.0f
  f2d r5, r4       ; 3.0 (f64)
  setp.eq.f64 p0, r3, r5
  imm r6, 0
  @p0 imm r6, 1
  st.64 [r1+0], r6
  d2f r7, r3
  f2i r8, r7
  st.64 [r1+8], r8
  exit
`
	p := assemble(t, src)
	dev := gpu.New(gpu.A100)
	out, _ := dev.Mem.Alloc(16, "out")
	var ctr gpu.LaunchCounters
	if err := p.Instantiate(out.Addr).Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err != nil {
		t.Fatal(err)
	}
	eq, _ := dev.Mem.LoadRaw(out.Addr, 8)
	rt, _ := dev.Mem.LoadRaw(out.Addr+8, 8)
	if eq != 1 || rt != 3 {
		t.Fatalf("eq=%d roundtrip=%d, want 1, 3", eq, rt)
	}
}

func TestStoreTruncatesToWidth(t *testing.T) {
	src := `
.kernel trunc
  param r1, 0
  imm r2, 0x1FF
  st.8 [r1+0], r2
  exit
`
	p := assemble(t, src)
	dev := gpu.New(gpu.A100)
	out, _ := dev.Mem.Alloc(8, "out")
	var ctr gpu.LaunchCounters
	if err := p.Instantiate(out.Addr).Execute(dev, gpu.Dim1(1), gpu.Dim1(1), nil, nil, &ctr); err != nil {
		t.Fatal(err)
	}
	raw, _ := dev.Mem.LoadRaw(out.Addr, 1)
	if raw != 0xFF {
		t.Fatalf("stored byte = %#x, want 0xFF", raw)
	}
}
