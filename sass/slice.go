package sass

import "valueexpert/gpu"

// This file implements the offline analyzer's access-type inference
// (paper §5.1): a bidirectional slicing pass that derives each memory
// instruction's value type from instructions with *known* types on its
// def-use chains. Arithmetic and conversion instructions anchor the
// lattice (FADD ⇒ f32, DADD ⇒ f64, IADD ⇒ int), and types propagate both
// forward (from a load's definition to its uses) and backward (from a
// store's operand to its producer) until a fixed point.
//
// The analysis is flow-insensitive over registers: each register gets the
// join of every typed constraint placed on it anywhere in the function.
// For compiler-shaped kernels (no aggressive register reuse across
// unrelated types) this recovers exactly what the paper's def-use slicing
// recovers; when a register genuinely carries conflicting types the
// lattice answers Unknown, which the online analyzer treats as opaque
// bits — the same fallback GVProf uses.

// typeLattice values.
type tclass uint8

const (
	tUnknown tclass = iota
	tInt            // produced/consumed by integer ALU ops
	tF32
	tF64
	tConflict
)

func join(a, b tclass) tclass {
	switch {
	case a == b:
		return a
	case a == tUnknown:
		return b
	case b == tUnknown:
		return a
	default:
		return tConflict
	}
}

// InferAccessTypes runs the slicing pass and returns the access type of
// every Ld/St instruction, keyed by instruction index (PC).
func InferAccessTypes(instrs []Instr) map[gpu.PC]gpu.AccessType {
	regT := make([]tclass, NumRegs)

	constrain := func(r uint8, t tclass) bool {
		nt := join(regT[r], t)
		if nt != regT[r] {
			regT[r] = nt
			return true
		}
		return false
	}

	// Fixed-point: each pass applies every instruction's constraints,
	// including copy propagation through MOV and the load/store coupling.
	for changed := true; changed; {
		changed = false
		for _, in := range instrs {
			switch in.Op {
			case OpIAdd, OpISub, OpIMul, OpAnd, OpOr, OpXor:
				changed = constrain(in.Dst, tInt) || changed
				changed = constrain(in.SrcA, tInt) || changed
				changed = constrain(in.SrcB, tInt) || changed
			case OpShl, OpShr:
				changed = constrain(in.Dst, tInt) || changed
				changed = constrain(in.SrcA, tInt) || changed
			case OpFAdd, OpFMul, OpFFma:
				changed = constrain(in.Dst, tF32) || changed
				changed = constrain(in.SrcA, tF32) || changed
				changed = constrain(in.SrcB, tF32) || changed
			case OpDAdd, OpDMul, OpDFma:
				changed = constrain(in.Dst, tF64) || changed
				changed = constrain(in.SrcA, tF64) || changed
				changed = constrain(in.SrcB, tF64) || changed
			case OpI2F:
				changed = constrain(in.SrcA, tInt) || changed
				changed = constrain(in.Dst, tF32) || changed
			case OpF2I:
				changed = constrain(in.SrcA, tF32) || changed
				changed = constrain(in.Dst, tInt) || changed
			case OpI2D:
				changed = constrain(in.SrcA, tInt) || changed
				changed = constrain(in.Dst, tF64) || changed
			case OpD2I:
				changed = constrain(in.SrcA, tF64) || changed
				changed = constrain(in.Dst, tInt) || changed
			case OpF2D:
				changed = constrain(in.SrcA, tF32) || changed
				changed = constrain(in.Dst, tF64) || changed
			case OpD2F:
				changed = constrain(in.SrcA, tF64) || changed
				changed = constrain(in.Dst, tF32) || changed
			case OpSetp:
				switch {
				case in.Mod&setpF32 != 0:
					changed = constrain(in.SrcA, tF32) || changed
					changed = constrain(in.SrcB, tF32) || changed
				case in.Mod&setpF64 != 0:
					changed = constrain(in.SrcA, tF64) || changed
					changed = constrain(in.SrcB, tF64) || changed
				default:
					changed = constrain(in.SrcA, tInt) || changed
					changed = constrain(in.SrcB, tInt) || changed
				}
			case OpMov:
				// Copies propagate type both directions (bidirectional).
				changed = constrain(in.Dst, regT[in.SrcA]) || changed
				changed = constrain(in.SrcA, regT[in.Dst]) || changed
			case OpLd:
				// Address register is integral; the loaded value's type
				// flows backward from its uses via regT[Dst].
				changed = constrain(in.SrcA, tInt) || changed
			case OpSt:
				changed = constrain(in.SrcA, tInt) || changed
			}
		}
	}

	out := make(map[gpu.PC]gpu.AccessType)
	for pc, in := range instrs {
		var valReg uint8
		switch in.Op {
		case OpLd:
			valReg = in.Dst
		case OpSt:
			valReg = in.SrcB
		default:
			continue
		}
		out[gpu.PC(pc)] = gpu.AccessType{Kind: kindOf(regT[valReg], in.Mod), Size: in.Mod}
	}
	return out
}

func kindOf(t tclass, width uint8) gpu.ValueKind {
	switch t {
	case tF32:
		if width == 4 {
			return gpu.KindFloat
		}
	case tF64:
		if width == 8 {
			return gpu.KindFloat
		}
	case tInt:
		return gpu.KindInt
	}
	return gpu.KindUnknown
}
