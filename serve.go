package valueexpert

import (
	"net/http"

	"valueexpert/internal/cliconfig"
	"valueexpert/internal/daemon"
)

// The serving surface: where Profile owns one application for one call,
// a Service hosts any number of concurrently attached applications, each
// a long-lived session with its own event-stream handler, and serves
// their reports, a process-level aggregate, and live telemetry over
// HTTP. This is the library form of the vxprofd daemon.
type (
	// Service is a multi-tenant profiler host; see internal/daemon.
	Service = daemon.Service
	// SessionHandle is one attached application's session. (The name
	// Session is taken by the multi-GPU profiling session above.)
	SessionHandle = daemon.Session
	// ServiceSessionConfig describes an application to Service.Attach.
	ServiceSessionConfig = daemon.SessionConfig
	// SessionState is a session's lifecycle position.
	SessionState = daemon.State
	// SessionInfo is a session's listing entry.
	SessionInfo = daemon.Info
	// ServiceAggregate is the deterministic process-level fold over
	// finalized session reports.
	ServiceAggregate = daemon.Aggregate
	// ServeConfig shapes the HTTP surface (engine option defaults and
	// the default device for POSTed sessions).
	ServeConfig = daemon.HandlerConfig
	// EngineOptions is the shared flag-shaped engine option set (the
	// vxprof flag surface and the POST /sessions "options" vocabulary);
	// use it to fill ServeConfig.Defaults.
	EngineOptions = cliconfig.Options
)

// The session lifecycle states.
const (
	SessionRunning  = daemon.StateRunning
	SessionDone     = daemon.StateDone
	SessionFailed   = daemon.StateFailed
	SessionCanceled = daemon.StateCanceled
)

// ErrServiceClosed is returned by Attach on a draining service.
var ErrServiceClosed = daemon.ErrClosed

// NewService creates an empty profiling service. Attach applications
// with Service.Attach, serve reports with Serve or Service.Handler, and
// drain with Service.Shutdown — a session canceled mid-kernel still
// yields a report, marked Degraded.
func NewService() *Service { return daemon.NewService() }

// Serve runs the service's HTTP report surface on addr (blocking), with
// JSON/text/GUI report endpoints per session plus /aggregate, /metrics,
// and /selftrace. For custom servers use Service.Handler directly.
func Serve(addr string, svc *Service, cfg ServeConfig) error {
	srv := &http.Server{Addr: addr, Handler: svc.Handler(cfg)}
	return srv.ListenAndServe()
}
