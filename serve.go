package valueexpert

import (
	"net/http"

	"valueexpert/internal/cliconfig"
	"valueexpert/internal/daemon"
)

// The serving surface: where Profile owns one application for one call,
// a Service hosts any number of concurrently attached applications, each
// a long-lived session with its own event-stream handler, and serves
// their reports, a process-level aggregate, and live telemetry over
// HTTP. This is the library form of the vxprofd daemon.
type (
	// Service is a multi-tenant profiler host; see internal/daemon.
	Service = daemon.Service
	// SessionHandle is one attached application's session. (The name
	// Session is taken by the multi-GPU profiling session above.)
	SessionHandle = daemon.Session
	// ServiceSessionConfig describes an application to Service.Attach.
	ServiceSessionConfig = daemon.SessionConfig
	// SessionState is a session's lifecycle position.
	SessionState = daemon.State
	// SessionInfo is a session's listing entry.
	SessionInfo = daemon.Info
	// ServiceAggregate is the deterministic process-level fold over
	// finalized session reports.
	ServiceAggregate = daemon.Aggregate
	// ServeConfig shapes the HTTP surface (engine option defaults and
	// the default device for POSTed sessions).
	ServeConfig = daemon.HandlerConfig
	// EngineOptions is the shared flag-shaped engine option set (the
	// vxprof flag surface and the canonical /v1 "options" vocabulary);
	// use it to fill ServeConfig.Defaults.
	EngineOptions = cliconfig.Options
	// ServiceOption configures NewService (admission limits, the
	// persistent report store).
	ServiceOption = daemon.Option
	// ServiceLimits bounds admission: a cap on concurrently running
	// streams and a FIFO queue behind it.
	ServiceLimits = daemon.Limits
	// ServiceStore is the content-addressed on-disk report store
	// finished sessions spill into and restart recovery reads from.
	ServiceStore = daemon.Store
	// ServiceQuotaError is the typed rejection for an Attach past the
	// admission bound (HTTP 429 / code "quota_exceeded" on the wire).
	ServiceQuotaError = daemon.QuotaError
	// ServiceAPIError is the one typed error envelope every /v1 surface
	// speaks: a stable code, a message, and an optional option field.
	ServiceAPIError = daemon.APIError
	// RemoteSession is the client half of remote attach: a handle on a
	// daemon session fed by this process's own runtime.
	RemoteSession = daemon.RemoteSession
	// RemoteAttachRequest is the remote-attach handshake body.
	RemoteAttachRequest = daemon.AttachRequest
)

// The session lifecycle states.
const (
	SessionQueued   = daemon.StateQueued
	SessionRunning  = daemon.StateRunning
	SessionDone     = daemon.StateDone
	SessionFailed   = daemon.StateFailed
	SessionCanceled = daemon.StateCanceled
)

// ErrServiceClosed is returned by Attach on a draining service.
var ErrServiceClosed = daemon.ErrClosed

// NewService creates an empty profiling service. Attach applications
// with Service.Attach, serve reports with Serve or Service.Handler, and
// drain with Service.Shutdown — a session canceled mid-kernel still
// yields a report, marked Degraded. Options bound admission
// (WithServiceLimits) and persist finished sessions across restarts
// (WithServiceStore).
func NewService(opts ...ServiceOption) *Service { return daemon.NewService(opts...) }

// WithServiceLimits caps concurrently running session streams and
// bounds the FIFO admission queue behind the cap; attaches past both
// fail with a *ServiceQuotaError.
func WithServiceLimits(l ServiceLimits) ServiceOption { return daemon.WithLimits(l) }

// WithServiceStore gives the service a persistent report store:
// finished sessions spill report + trace there (and are evicted from
// memory), and a new service over the same directory serves them again.
func WithServiceStore(st *ServiceStore) ServiceOption { return daemon.WithStore(st) }

// OpenServiceStore opens (creating if needed) a content-addressed
// report store rooted at dir.
func OpenServiceStore(dir string) (*ServiceStore, error) { return daemon.OpenStore(dir) }

// DialServiceAttach connects to a daemon's remote-attach socket and
// performs the handshake; the returned RemoteSession streams this
// process's GPU events into a session hosted by the daemon. A
// daemon-side rejection is returned as the *ServiceAPIError it sent.
func DialServiceAttach(network, addr string, req RemoteAttachRequest) (*RemoteSession, error) {
	return daemon.DialAttach(network, addr, req)
}

// Serve runs the service's HTTP report surface on addr (blocking), with
// JSON/text/GUI report endpoints per session plus /aggregate, /metrics,
// and /selftrace. For custom servers use Service.Handler directly.
func Serve(addr string, svc *Service, cfg ServeConfig) error {
	srv := &http.Server{Addr: addr, Handler: svc.Handler(cfg)}
	return srv.ListenAndServe()
}
