package valueexpert

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"valueexpert/callpath"
	"valueexpert/cuda"
	"valueexpert/gpu"
)

// TestServiceFacade drives the serving surface exactly like an embedding
// application: attach a program as a session, wait for it, and check the
// session report matches the one-shot Profile call byte for byte.
func TestServiceFacade(t *testing.T) {
	run := func(rt *cuda.Runtime) error {
		// Synthetic frame: keeps call paths identical whether the program
		// runs on the test goroutine (one-shot) or a session's stream
		// handler, so the reports stay byte-comparable.
		rt.PushFrame(callpath.Frame{Func: "servedProgram", File: "serve_test.go", Line: 1})
		defer rt.PopFrame()
		buf, err := rt.MallocF32(1024, "data")
		if err != nil {
			return err
		}
		if err := rt.Memset(buf, 0, 4*1024); err != nil {
			return err
		}
		k := &gpu.GoKernel{Name: "serve_kernel", Func: func(th *gpu.Thread) {
			i := th.GlobalID()
			if i >= 1024 {
				return
			}
			th.StoreF32(0, uint64(buf)+uint64(4*i), 0)
		}}
		return rt.Launch(k, gpu.Dim1(4), gpu.Dim1(256))
	}
	cfg := Config{Coarse: true, Fine: true, Program: "served"}

	// The one-shot baseline.
	p, err := Profile(NewLiveSource(cuda.NewRuntime(gpu.RTX2080Ti), run), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Detach()
	baseline := p.Report()

	svc := NewService()
	sess, err := svc.Attach(ServiceSessionConfig{
		Program: "served", Device: gpu.RTX2080Ti, Engine: cfg, Run: run,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Drain(); err != nil {
		t.Fatal(err)
	}
	if sess.State() != SessionDone {
		t.Fatalf("state = %s, want done", sess.State())
	}
	rep, ok := sess.Report()
	if !ok {
		t.Fatal("no report after Drain")
	}
	norm := func(r *Report) []byte {
		cp := *r
		cp.Stats.AnalysisTime = 0
		var buf bytes.Buffer
		if err := cp.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(norm(rep), norm(baseline)) {
		t.Fatal("session report differs from one-shot baseline")
	}

	// A rejected configuration returns the typed error and a draining
	// service refuses new sessions.
	bad := cfg
	bad.AnalysisWorkers = -1
	var ce *ConfigError
	if _, err := svc.Attach(ServiceSessionConfig{
		Program: "bad", Device: gpu.RTX2080Ti, Engine: bad, Run: run,
	}); !errors.As(err, &ce) {
		t.Fatalf("Attach with invalid config = %v, want ConfigError", err)
	}
	svc.Shutdown()
	if _, err := svc.Attach(ServiceSessionConfig{
		Program: "late", Device: gpu.RTX2080Ti, Engine: cfg, Run: run,
	}); err != ErrServiceClosed {
		t.Fatalf("Attach after Shutdown = %v, want ErrServiceClosed", err)
	}
}

// TestServeHandlerFacade drives the HTTP surface through the facade the
// way the README quickstart curls it.
func TestServeHandlerFacade(t *testing.T) {
	svc := NewService()
	defer svc.Shutdown()
	h := svc.Handler(ServeConfig{
		Defaults: EngineOptions{Coarse: true, Fine: true, Sample: 1, Scale: 8},
		Device:   "RTX 2080 Ti",
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/sessions", "application/json",
		strings.NewReader(`{"workload": "Rodinia/bfs"}`))
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || info.ID == "" {
		t.Fatalf("POST /sessions = %d %+v", resp.StatusCode, info)
	}

	resp, err = http.Get(ts.URL + "/sessions/" + info.ID + "/report?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Program != "Rodinia/bfs" || len(rep.Objects) == 0 {
		t.Fatalf("report = %d program=%q objects=%d", resp.StatusCode, rep.Program, len(rep.Objects))
	}

	resp, err = http.Get(ts.URL + "/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	var agg ServiceAggregate
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(agg.Sessions) != 1 || agg.Objects == 0 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

// TestFleetFacade drives the fleet re-exports the way an embedding
// application would: a limit-bounded service with a persistent store,
// a quota rejection typed as *ServiceQuotaError, remote attach through
// DialServiceAttach, and restart recovery through OpenServiceStore.
func TestFleetFacade(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenServiceStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(
		WithServiceLimits(ServiceLimits{MaxRunning: 1, MaxQueued: 0}),
		WithServiceStore(st),
	)
	cfg := Config{Coarse: true, Fine: true, Program: "fleet"}

	gate := make(chan struct{})
	blocker, err := svc.Attach(ServiceSessionConfig{
		Program: "fleet", Device: gpu.RTX2080Ti, Engine: cfg,
		Run: func(rt *cuda.Runtime) error { <-gate; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// No queue configured: the second Attach is rejected outright.
	var qe *ServiceQuotaError
	if _, err := svc.Attach(ServiceSessionConfig{
		Program: "over", Device: gpu.RTX2080Ti, Engine: cfg,
		Run: func(rt *cuda.Runtime) error { return nil },
	}); !errors.As(err, &qe) {
		t.Fatalf("over-quota Attach = %v, want *ServiceQuotaError", err)
	}
	close(gate)
	if err := blocker.Drain(); err != nil {
		t.Fatal(err)
	}
	id := blocker.ID()
	svc.Shutdown()

	// A fresh service over the same store directory serves the finished
	// session again, marked Restored.
	st2, err := OpenServiceStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := NewService(WithServiceStore(st2))
	defer svc2.Shutdown()
	restored := svc2.Session(id)
	if restored == nil {
		t.Fatalf("session %s not restored from %s", id, dir)
	}
	if info := restored.Info(); !info.Restored || info.State != SessionDone {
		t.Fatalf("restored session info = %+v", info)
	}

	// Remote attach through the facade: stream a program into svc2 and
	// read the finalized report back over the socket.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	as := svc2.ServeAttach(ln, ServeConfig{
		Defaults: EngineOptions{Coarse: true, Fine: true, Sample: 1, Scale: 1},
		Device:   "RTX 2080 Ti",
	})
	defer as.Close()
	rs, err := DialServiceAttach("tcp", ln.Addr().String(), RemoteAttachRequest{Program: "remote-fleet"})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if err := rs.Run(gpu.RTX2080Ti, func(rt *cuda.Runtime) error {
		buf, err := rt.MallocF32(64, "remote")
		if err != nil {
			return err
		}
		return rt.Memset(buf, 0, 4*64)
	}); err != nil {
		t.Fatal(err)
	}
	final, raw, err := rs.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if final.State != SessionDone || len(raw) == 0 {
		t.Fatalf("remote session finished %s with %d report bytes", final.State, len(raw))
	}
	if _, err := ReadReport(bytes.NewReader(raw)); err != nil {
		t.Fatalf("remote report does not parse: %v", err)
	}
}
