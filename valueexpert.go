// Package valueexpert is a Go implementation of ValueExpert, the value
// profiling and analysis tool of Zhou, Hao, Mellor-Crummey, Meng, and Liu,
// "ValueExpert: Exploring Value Patterns in GPU-Accelerated Applications"
// (ASPLOS 2022).
//
// ValueExpert monitors a GPU-accelerated program's execution, captures the
// values produced and used by every memory load and store in GPU kernels,
// recognizes eight value patterns (redundant, duplicate, frequent, single
// value, single zero, heavy type, structured, and approximate values), and
// builds a program-wide value flow graph that pinpoints value-related
// inefficiencies across GPU API invocations.
//
// Because this repository targets environments without NVIDIA hardware,
// programs run on the simulated CUDA-like runtime of package cuda (see
// DESIGN.md for the substitution argument). The profiler attaches to a
// runtime and observes every GPU API:
//
//	rt := cuda.NewRuntime(gpu.RTX2080Ti)
//	p := valueexpert.Attach(rt, valueexpert.Config{Coarse: true, Fine: true})
//	// ... run the GPU program against rt ...
//	report := p.Report()
//	fmt.Print(report.Text())
//	os.WriteFile("flow.dot", []byte(p.Graph().DOT(valueexpert.DOTOptions{})), 0o644)
package valueexpert

import (
	"io"

	"valueexpert/cuda"
	"valueexpert/gpu"
	"valueexpert/internal/advisor"
	"valueexpert/internal/core"
	"valueexpert/internal/faultinject"
	"valueexpert/internal/gui"
	"valueexpert/internal/interval"
	"valueexpert/internal/profile"
	"valueexpert/internal/telemetry"
	"valueexpert/internal/trace"
	"valueexpert/internal/vflow"
	"valueexpert/internal/vpattern"
)

// Config selects ValueExpert's analyses; see core.Config for field docs.
type Config = core.Config

// ConfigError is the typed validation error Config.Validate returns:
// Field names the offending Config field so front-ends can map it back
// to their own option names.
type ConfigError = core.ConfigError

// Profiler is an attached ValueExpert instance.
type Profiler = core.Profiler

// Attach installs ValueExpert on a runtime. Detach with Profiler.Detach.
// Attach panics on a configuration that fails Config.Validate; use
// Profile or NewSession for the error-returning path.
func Attach(rt *cuda.Runtime, cfg Config) *Profiler { return core.Attach(rt, cfg) }

// EventSource is a producer of a GPU API event stream — live execution
// (NewLiveSource) or trace replay (trace.NewSource) — that profilers
// consume identically.
type EventSource = cuda.EventSource

// NewLiveSource adapts a live program issuing GPU work against rt to the
// EventSource interface.
func NewLiveSource(rt *cuda.Runtime, run func(rt *cuda.Runtime) error) EventSource {
	return cuda.NewLiveSource(rt, run)
}

// Profile attaches a profiler to src's runtime and runs the source's
// event stream through it. The profiler is returned even on error,
// holding whatever the stream produced before failing.
func Profile(src EventSource, cfg Config) (*Profiler, error) {
	return core.Profile(src, cfg)
}

// Analysis is one pluggable stage of the analysis engine; register custom
// stages through Config.Analyses. BaseStage supplies no-op defaults for
// the optional lifecycle methods.
type (
	Analysis        = core.Analysis
	AnalysisFactory = core.AnalysisFactory
	AnalysisEnv     = core.Env
	LaunchAnalysis  = core.LaunchAnalysis
	Batch           = core.Batch
	Partial         = core.Partial
	BaseStage       = core.BaseStage
)

// Report is the annotated profile produced by Profiler.Report.
type Report = profile.Report

// OverheadStats is the profiler's own cost breakdown (collection vs.
// analysis vs. snapshot maintenance), produced by Profiler.Overhead and
// attachable to a report's optional Overhead section.
type OverheadStats = profile.Overhead

// ReadReport deserializes a profile written with Report.WriteJSON.
var ReadReport = profile.ReadJSON

// Self-observability: the profiler profiling itself. A Telemetry
// recorder threaded through Config.Telemetry collects per-stage metrics
// (Metrics/WriteMetrics); attach a TraceSink (NewTraceBuffer) to it with
// AttachTrace for a Chrome trace-event self-trace showing kernel
// execution overlapped with the analysis workers. Enabling telemetry
// never changes the emitted report.
type (
	// Telemetry is a per-run metrics registry and trace-span source.
	Telemetry = telemetry.Recorder
	// Metrics is the structured metrics snapshot Telemetry exports.
	Metrics = telemetry.Metrics
	// TraceSink consumes self-trace events.
	TraceSink = telemetry.TraceSink
	// TraceEvent is one Chrome trace event.
	TraceEvent = telemetry.Event
	// TraceBuffer is an in-memory TraceSink serializing to Chrome
	// trace-event JSON (Perfetto-loadable).
	TraceBuffer = telemetry.Buffer
)

// NewTelemetry creates an empty telemetry recorder for Config.Telemetry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// NewTraceBuffer creates an in-memory trace sink; attach it with
// Telemetry.AttachTrace and serialize with TraceBuffer.WriteJSON.
func NewTraceBuffer() *TraceBuffer { return telemetry.NewBuffer() }

// Trace record/replay: capture one instrumented run's API+access stream
// and re-analyze it offline with different settings through Profile —
// no longer a vxprof-only facility.
type (
	// TraceRecorder captures a runtime's event stream (see Record).
	TraceRecorder = trace.Recorder
	// TraceSource replays a recorded trace as an EventSource.
	TraceSource = trace.Source
	// TraceFormat selects a trace encoding (TraceBinary, TraceJSONL).
	TraceFormat = trace.Format
)

// The trace encodings: the columnar binary container (default) and the
// readable JSONL debug format. Readers sniff the encoding, so either
// replays through NewTraceSource.
const (
	TraceBinary = trace.FormatBinary
	TraceJSONL  = trace.FormatJSONL
)

// Recording is an in-progress trace capture started by Record. The
// stream is serialized as the program runs (recording memory stays
// bounded regardless of run length); Close it after the program ran to
// detach the recorder and finalize the container.
type Recording struct {
	rec *trace.Recorder
}

// Events reports the number of events captured so far.
func (r *Recording) Events() int { return r.rec.Events() }

// Close detaches the recorder from its runtime and finalizes the trace
// container, returning the first serialization error if any write
// failed mid-run.
func (r *Recording) Close() error { return r.rec.Close() }

// Record attaches a streaming trace recorder to rt that serializes the
// binary format to w as the program runs: run the program against rt,
// then Close the recording.
//
//	rec := valueexpert.Record(rt, f)
//	// ... run the GPU program against rt ...
//	if err := rec.Close(); err != nil { ... }
func Record(rt *cuda.Runtime, w io.Writer) *Recording {
	return RecordFormat(rt, w, trace.FormatBinary)
}

// RecordFormat is Record with an explicit trace encoding.
func RecordFormat(rt *cuda.Runtime, w io.Writer, f TraceFormat) *Recording {
	return &Recording{rec: trace.Record(rt, w, f)}
}

// NewTraceSource replays a trace previously serialized by a Recording
// into a fresh runtime simulating device, sniffing the encoding from
// the first bytes; feed it to Profile like any live source.
func NewTraceSource(r io.Reader, device gpu.Profile) *TraceSource {
	return trace.NewSource(r, device)
}

// Deterministic fault injection: a FaultPlan armed on a runtime
// (Runtime.ArmFaults, before Attach) makes selected API calls, kernel
// launches, and sanitizer buffer deliveries fail on demand, so the
// engine's degradation paths can be exercised reproducibly. Partial runs
// surface as typed *cuda.Error values and a report's Degraded section.
type (
	// FaultPlan schedules which operations fail; see faultinject.Plan.
	FaultPlan = faultinject.Plan
	// FaultPoint is one injectable failure site (FaultMalloc …).
	FaultPoint = faultinject.Point
	// FaultInjection describes one fired fault (Plan.Fired).
	FaultInjection = faultinject.Injection
)

// The injectable fault points.
const (
	FaultMalloc        = faultinject.Malloc
	FaultMemcpy        = faultinject.Memcpy
	FaultMemset        = faultinject.Memset
	FaultLaunch        = faultinject.Launch
	FaultFlushDrop     = faultinject.FlushDrop
	FaultFlushTruncate = faultinject.FlushTruncate
	FaultFlushDelay    = faultinject.FlushDelay
)

// NewFaultPlan creates an empty plan; schedule failures with FailNth and
// FailLaunchNth.
func NewFaultPlan() *FaultPlan { return faultinject.New() }

// SeededFaultPlan creates a plan whose fault points fire pseudo-randomly
// from seed; tune the rate with WithProbability.
func SeededFaultPlan(seed int64) *FaultPlan { return faultinject.Seeded(seed) }

// ParseFaultSpec parses a textual plan like "seed=7,prob=0.05" or
// "malloc@1,launch@2+16" — the vxprof -faults grammar.
func ParseFaultSpec(spec string) (*FaultPlan, error) { return faultinject.ParseSpec(spec) }

// DegradedStats is a report's optional Degraded section: present exactly
// when collection was incomplete (failed APIs, skipped launches, lost
// sanitizer deliveries), marking the findings as a lower bound.
type DegradedStats = profile.Degraded

// FineConfig tunes fine-grained pattern thresholds (𝒯, 𝒦, …).
type FineConfig = vpattern.FineConfig

// PatternKind enumerates the value patterns: the paper's eight builtins
// plus any out-of-tree kinds allocated through RegisterPattern.
type PatternKind = vpattern.Kind

// The eight value patterns.
const (
	RedundantValues   = vpattern.RedundantValues
	DuplicateValues   = vpattern.DuplicateValues
	FrequentValues    = vpattern.FrequentValues
	SingleValue       = vpattern.SingleValue
	SingleZero        = vpattern.SingleZero
	HeavyType         = vpattern.HeavyType
	StructuredValues  = vpattern.StructuredValues
	ApproximateValues = vpattern.ApproximateValues
	NumPatternKinds   = vpattern.NumKinds
)

// The pattern registry: pattern detection is a pluggable seam. A
// PatternRegistration ties together everything one pattern kind needs —
// name, grain, detector factory, advisor advice — and registering it is
// all it takes for the engine, report, advisor, and GUI to carry the new
// pattern; Config.Patterns (or vxprof -patterns) then enables it by name.
type (
	// PatternRegistration describes one value-pattern kind; see
	// vpattern.Registration for field docs.
	PatternRegistration = vpattern.Registration
	// PatternDetector recognizes one fine-grained pattern over an
	// instrumented access stream (Observe/Merge/Finalize).
	PatternDetector = vpattern.Detector
	// PatternMatch is one detected pattern instance on a data object.
	PatternMatch = vpattern.Match
	// PatternGrain classifies a pattern as coarse (snapshot-based) or
	// fine (access-stream-based).
	PatternGrain = vpattern.Grain
	// ObjectObservation is the shared per-object observation context
	// (access counters + exact-value histogram) handed to detectors.
	ObjectObservation = vpattern.ObjectShared
	// PatternAdvice derives the advisor suggestion for one fine match.
	PatternAdvice = vpattern.FineAdvice
)

const (
	// CoarseGrain marks snapshot-based patterns.
	CoarseGrain = vpattern.GrainCoarse
	// FineGrain marks access-stream-based patterns.
	FineGrain = vpattern.GrainFine
	// AutoPatternKind asks RegisterPattern to allocate the next free kind.
	AutoPatternKind = vpattern.KindAuto
)

// RegisterPattern adds a pattern kind to the global registry and returns
// its (possibly allocated) kind. Call from package init; the kind's name
// becomes selectable via Config.Patterns and vxprof -patterns.
func RegisterPattern(r PatternRegistration) PatternKind { return vpattern.Register(r) }

// PatternNames returns every registered pattern name in registration
// order.
func PatternNames() []string { return vpattern.Names() }

// DefaultPatternNames returns the names of the patterns enabled when
// Config.Patterns is unset.
func DefaultPatternNames() []string { return vpattern.DefaultNames() }

// ParsePatternSet validates a Config.Patterns-style name list against the
// registry; unknown names are rejected with the valid set listed.
func ParsePatternSet(names []string) (vpattern.Set, error) { return vpattern.ParseSet(names) }

// RegisterSuggestionRule installs a report-level advisor rule for pattern
// kind k — the hook coarse-style patterns use for suggestions that span
// records (per-match advice for fine patterns instead rides the
// registration's PatternAdvice).
func RegisterSuggestionRule(k PatternKind, rule func(rep *Report) []Suggestion) {
	advisor.RegisterRule(k, rule)
}

// RegisterReportSection installs an extra HTML report section rendered
// after the built-in tables — the hook out-of-tree detectors use to give
// their findings a dedicated view. render returns an HTML fragment; ""
// omits the section for that report.
func RegisterReportSection(name string, render func(rep *Report) string) {
	gui.RegisterSection(name, render)
}

// Graph is the value flow graph (Definition 5.1) with vertex slicing
// (Definition 5.2), important-graph pruning (Definition 5.3), and DOT
// rendering.
type Graph = vflow.Graph

// DOTOptions controls Graph.DOT rendering.
type DOTOptions = vflow.DOTOptions

// Importance carries the user-defined metrics I(v), I(e) of Definition 5.3.
type Importance = vflow.Importance

// Interval is a half-open byte range of accessed device memory.
type Interval = interval.Interval

// CopyStrategy selects how snapshots are refreshed (Figure 5).
type CopyStrategy = interval.CopyStrategy

// Snapshot copy strategies.
const (
	DirectCopy   = interval.DirectCopy
	MinMaxCopy   = interval.MinMaxCopy
	SegmentCopy  = interval.SegmentCopy
	AdaptiveCopy = interval.AdaptiveCopy
)

// MergeIntervals merges overlapping and adjacent intervals using the
// paper's data-parallel algorithm (Figure 4) on a pool of workers
// (workers <= 0 selects one per CPU). The input is not modified.
func MergeIntervals(ivs []Interval, workers int) []Interval {
	return interval.NewMerger(workers).MergeParallel(ivs)
}

// MergeIntervalsSequential is the O(N log N) baseline merge the paper
// compares against.
func MergeIntervalsSequential(ivs []Interval) []Interval {
	return interval.MergeSequential(ivs)
}

// Session profiles a multi-GPU program: one runtime and profiler per
// device plus cross-device duplicate analysis (replicated tensors).
type Session = core.Session

// ObjectRef names a data object on one of a session's devices.
type ObjectRef = core.ObjectRef

// NewSession creates one runtime+profiler per device profile. An invalid
// configuration returns its validation error (see Config.Validate).
func NewSession(cfg Config, devices ...gpu.Profile) (*Session, error) {
	return core.NewSession(cfg, devices...)
}

// Suggestion is one ranked optimization opportunity derived from the
// profile — the per-pattern playbook of paper §3 applied to the findings.
type Suggestion = advisor.Suggestion

// Suggest derives ranked optimization suggestions from a report and
// (optionally) its value flow graph.
func Suggest(rep *Report, graph *Graph) []Suggestion {
	return advisor.Analyze(rep, graph)
}

// RenderSuggestions formats the top max suggestions (0 = all).
func RenderSuggestions(sugs []Suggestion, max int) string {
	return advisor.Render(sugs, max)
}

// HTMLOptions controls RenderHTML.
type HTMLOptions = gui.Options

// RenderHTML produces a self-contained HTML report — the GUI view of the
// paper's Figure 2: the value flow graph as hover-annotated SVG plus the
// pattern tables. graph may be nil to omit the graph section.
func RenderHTML(rep *Report, graph *Graph, opts HTMLOptions) string {
	return gui.RenderHTML(rep, graph, opts)
}

// PlanCopy computes the device-to-host byte ranges a snapshot refresh
// would transfer for a data object spanning object, given its merged
// accessed intervals, under the chosen strategy (Figure 5).
func PlanCopy(strategy CopyStrategy, object Interval, merged []Interval) []Interval {
	return interval.PlanCopy(strategy, object, merged)
}
