package valueexpert

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"valueexpert/cuda"
	"valueexpert/gpu"
)

// TestEndToEndQuickstart exercises the whole public API surface exactly
// like the README's quickstart: allocate, initialize twice (the classic
// redundancy), launch, profile, render, and export the graph.
func TestEndToEndQuickstart(t *testing.T) {
	rt := cuda.NewRuntime(gpu.RTX2080Ti)
	p := Attach(rt, Config{Coarse: true, Fine: true, Program: "quickstart"})

	const n = 4096
	buf, err := rt.MallocF32(n, "data")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memset(buf, 0, 4*n); err != nil {
		t.Fatal(err)
	}
	zero := &gpu.GoKernel{
		Name: "init_kernel",
		Func: func(th *gpu.Thread) {
			i := th.GlobalID()
			if i >= n {
				return
			}
			th.StoreF32(0, uint64(buf)+uint64(4*i), 0) // zeros over zeros
		},
	}
	if err := rt.Launch(zero, gpu.Dim1(n/256), gpu.Dim1(256)); err != nil {
		t.Fatal(err)
	}

	rep := p.Report()
	pats := rep.PatternSet()
	for _, want := range []PatternKind{RedundantValues, SingleValue, SingleZero} {
		if !pats[want.String()] {
			t.Fatalf("missing pattern %v in %v", want, pats)
		}
	}
	if !strings.Contains(rep.Text(), "init_kernel") {
		t.Fatal("report text missing kernel")
	}

	// JSON round trip through the public API.
	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != "quickstart" {
		t.Fatal("round trip lost program name")
	}

	// Graph export and analysis through the facade types.
	g := p.Graph()
	dot := g.DOT(DOTOptions{Title: "quickstart"})
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "color=red") {
		t.Fatalf("graph DOT missing content:\n%s", dot)
	}
	gi := g.ImportantGraph(1, 1e18, Importance{})
	if gi.NumEdges() == 0 {
		t.Fatal("important graph lost everything")
	}
}

// TestRecordReplayFacade drives the promoted record/replay API: capture
// a run through valueexpert.Record, replay it with NewTraceSource, and
// check the offline analysis sees the same program.
func TestRecordReplayFacade(t *testing.T) {
	runProgram := func(rt *cuda.Runtime) {
		const n = 1024
		buf, err := rt.MallocF32(n, "data")
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Memset(buf, 0, 4*n); err != nil {
			t.Fatal(err)
		}
		k := &gpu.GoKernel{
			Name: "zero_again",
			Func: func(th *gpu.Thread) {
				i := th.GlobalID()
				if i >= n {
					return
				}
				th.StoreF32(0, uint64(buf)+uint64(4*i), 0)
			},
		}
		if err := rt.Launch(k, gpu.Dim1(n/256), gpu.Dim1(256)); err != nil {
			t.Fatal(err)
		}
	}

	var traceBuf bytes.Buffer
	rt := cuda.NewRuntime(gpu.RTX2080Ti)
	rec := Record(rt, &traceBuf)
	runProgram(rt)
	if rec.Events() == 0 {
		t.Fatal("recorder captured nothing")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if traceBuf.Len() == 0 {
		t.Fatal("Close wrote no bytes")
	}

	src := NewTraceSource(bytes.NewReader(traceBuf.Bytes()), gpu.RTX2080Ti)
	p, err := Profile(src, Config{Coarse: true, Fine: true, Program: "replayed"})
	if err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	if !strings.Contains(rep.Text(), "zero_again") {
		t.Fatal("replayed report missing the recorded kernel")
	}
	if !rep.PatternSet()[RedundantValues.String()] {
		t.Fatal("replayed analysis lost the redundant memset finding")
	}
}

// TestTelemetryFacade threads a recorder and trace buffer through the
// public API and checks both exports carry data.
func TestTelemetryFacade(t *testing.T) {
	tel := NewTelemetry()
	traceBuf := NewTraceBuffer()
	tel.AttachTrace(traceBuf)

	src := NewLiveSource(cuda.NewRuntime(gpu.A100), func(rt *cuda.Runtime) error {
		const n = 512
		buf, err := rt.MallocF32(n, "x")
		if err != nil {
			return err
		}
		return rt.CopyF32ToDevice(buf, make([]float32, n))
	})
	p, err := Profile(src, Config{Coarse: true, Telemetry: tel, Program: "facade"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Detach()

	m := tel.Metrics()
	if m.Program != "facade" {
		t.Fatalf("metrics program = %q", m.Program)
	}
	var out bytes.Buffer
	if err := tel.WriteMetrics(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"counters\"") {
		t.Fatal("metrics export missing counters")
	}
	out.Reset()
	if err := traceBuf.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "traceEvents") {
		t.Fatal("trace export missing traceEvents envelope")
	}

	var ov *OverheadStats = p.Overhead()
	if ov == nil {
		t.Fatal("no overhead stats")
	}
}

// TestConfigValidateFacade: the validator and its typed error are part
// of the public surface.
func TestConfigValidateFacade(t *testing.T) {
	good := Config{Coarse: true}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Config{AnalysisWorkers: -1}
	err := bad.Validate()
	ce, ok := err.(*ConfigError)
	if !ok || ce.Field != "AnalysisWorkers" {
		t.Fatalf("Validate error = %v", err)
	}
}

func TestMergeIntervalsFacade(t *testing.T) {
	ivs := []Interval{{Start: 8, End: 12}, {Start: 0, End: 4}, {Start: 4, End: 8}}
	got := MergeIntervals(ivs, 2)
	if len(got) != 1 || got[0] != (Interval{Start: 0, End: 12}) {
		t.Fatalf("MergeIntervals = %v", got)
	}
	seq := MergeIntervalsSequential(ivs)
	if len(seq) != 1 || seq[0] != got[0] {
		t.Fatalf("sequential merge = %v", seq)
	}
}

func TestCopyStrategyConstants(t *testing.T) {
	names := map[CopyStrategy]string{
		DirectCopy: "direct", MinMaxCopy: "min-max",
		SegmentCopy: "segment", AdaptiveCopy: "adaptive",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%v != %s", s, want)
		}
	}
}

func TestPatternKindConstants(t *testing.T) {
	kinds := []PatternKind{
		RedundantValues, DuplicateValues, FrequentValues, SingleValue,
		SingleZero, HeavyType, StructuredValues, ApproximateValues,
	}
	if len(kinds) != int(NumPatternKinds) {
		t.Fatal("pattern kind count mismatch")
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k.String()] {
			t.Fatalf("duplicate kind name %q", k)
		}
		seen[k.String()] = true
	}
}

// TestFineConfigThresholds drives the public threshold knobs end to end.
func TestFineConfigThresholds(t *testing.T) {
	rt := cuda.NewRuntime(gpu.A100)
	p := Attach(rt, Config{
		Fine:       true,
		FineConfig: FineConfig{FrequentThreshold: 0.95},
		Program:    "thresholds",
	})
	const n = 1024
	buf, _ := rt.MallocF32(n, "x")
	k := &gpu.GoKernel{
		Name: "writer",
		Func: func(th *gpu.Thread) {
			i := th.GlobalID()
			if i >= n {
				return
			}
			v := float32(0)
			if i%10 == 0 { // 90% zeros: above 0.5, below 0.95
				v = float32(i)
			}
			th.StoreF32(0, uint64(buf)+uint64(4*i), v)
		},
	}
	if err := rt.Launch(k, gpu.Dim1(n/256), gpu.Dim1(256)); err != nil {
		t.Fatal(err)
	}
	if p.Report().PatternSet()["frequent values"] {
		t.Fatal("90% hot value should be below the 95% threshold")
	}
}

// TestFaultInjectionFacade drives the fault-injection surface end to
// end through the public API: arm a parsed plan, run a program that
// tolerates the injected OOM, and read the Degraded section back from a
// JSON round trip.
func TestFaultInjectionFacade(t *testing.T) {
	plan, err := ParseFaultSpec("malloc@2")
	if err != nil {
		t.Fatal(err)
	}
	rt := cuda.NewRuntime(gpu.RTX2080Ti)
	rt.ArmFaults(plan)
	p := Attach(rt, Config{Coarse: true, Fine: true, Program: "faulty"})
	defer p.Detach()

	const n = 1024
	buf, err := rt.MallocF32(n, "ok")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.MallocF32(n, "doomed"); err == nil {
		t.Fatal("armed malloc fault did not fire")
	} else {
		var ce *cuda.Error
		if !errors.As(err, &ce) || ce.Code != cuda.ErrOOM || !ce.Injected {
			t.Fatalf("injected error = %v, want typed OOM", err)
		}
	}
	if err := rt.Memset(buf, 0, 4*n); err != nil {
		t.Fatal(err)
	}

	rep := p.Report()
	if rep.Degraded == nil {
		t.Fatal("report of a faulted run is not marked Degraded")
	}
	if len(rep.Degraded.InjectedFaults) != 1 || rep.Degraded.InjectedFaults[0] != "malloc@2" {
		t.Fatalf("InjectedFaults = %v", rep.Degraded.InjectedFaults)
	}
	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	var ds *DegradedStats = back.Degraded
	if ds == nil || len(ds.FailedAPIs) != 1 {
		t.Fatalf("round trip lost the degraded section: %+v", ds)
	}
	if !strings.Contains(rep.Text(), "DEGRADED RUN") {
		t.Fatal("text rendering missing the degraded banner")
	}

	// The plan's own accounting and the seeded/constructor facades.
	if plan.TotalFired() != 1 {
		t.Fatalf("TotalFired = %d", plan.TotalFired())
	}
	if NewFaultPlan().TotalFired() != 0 {
		t.Fatal("NewFaultPlan not empty")
	}
	if _, ok := SeededFaultPlan(7).Seed(); !ok {
		t.Fatal("SeededFaultPlan lost its seed")
	}
	for _, pt := range []FaultPoint{FaultMalloc, FaultMemcpy, FaultMemset,
		FaultLaunch, FaultFlushDrop, FaultFlushTruncate, FaultFlushDelay} {
		if pt.String() == "" {
			t.Fatal("unnamed fault point")
		}
	}
}
